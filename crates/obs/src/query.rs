//! The trace query engine: a small combinator API over a tracer's span
//! table and event ring, used directly by tests and storm harnesses to
//! assert causality — "every failover descends from a `shard_down`
//! span", "no migration span is still open at campaign end" — and to
//! cut deterministic duration percentiles for the SLO report.

use crate::span::{SpanId, SpanRecord};
use crate::trace::{TraceEvent, Tracer};

/// Entry point: wraps a tracer for querying.
#[derive(Debug, Clone, Copy)]
pub struct TraceQuery<'a> {
    tracer: &'a Tracer,
}

impl<'a> TraceQuery<'a> {
    /// Queries `tracer`.
    #[must_use]
    pub fn new(tracer: &'a Tracer) -> Self {
        TraceQuery { tracer }
    }

    /// Every span, as a filterable set.
    #[must_use]
    pub fn spans(&self) -> SpanSet<'a> {
        SpanSet {
            all: self.tracer.spans(),
            picked: self.tracer.spans().iter().collect(),
        }
    }

    /// Retained events stamped inside span `id` (ring-bounded: events
    /// dropped by the ring are gone; the span table itself is not).
    #[must_use]
    pub fn events_in_span(&self, id: SpanId) -> Vec<&'a TraceEvent> {
        self.tracer
            .events()
            .filter(|e| e.span == Some(id.raw()))
            .collect()
    }

    /// Retained events whose kind label is `label`.
    #[must_use]
    pub fn events_by_kind(&self, label: &str) -> Vec<&'a TraceEvent> {
        self.tracer
            .events()
            .filter(|e| e.kind.label() == label)
            .collect()
    }
}

/// A filtered set of spans. Combinators narrow the set; `all` keeps the
/// full table so lineage queries (`descendants`, `rooted_in`) can walk
/// parent links outside the current selection.
#[derive(Debug, Clone)]
pub struct SpanSet<'a> {
    all: &'a [SpanRecord],
    picked: Vec<&'a SpanRecord>,
}

impl<'a> SpanSet<'a> {
    fn filter(self, pred: impl Fn(&SpanRecord) -> bool) -> Self {
        SpanSet {
            all: self.all,
            picked: self.picked.into_iter().filter(|s| pred(s)).collect(),
        }
    }

    fn lookup(&self, id: SpanId) -> Option<&'a SpanRecord> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.all.get(idx)
    }

    /// Keeps spans whose operation label is `op`.
    #[must_use]
    pub fn by_kind(self, op: &str) -> Self {
        self.filter(|s| s.op == op)
    }

    /// Keeps spans correlated to shard `shard`.
    #[must_use]
    pub fn by_shard(self, shard: u64) -> Self {
        self.filter(|s| s.shard == Some(shard))
    }

    /// Keeps spans correlated to stream `stream`.
    #[must_use]
    pub fn by_stream(self, stream: u64) -> Self {
        self.filter(|s| s.stream == Some(stream))
    }

    /// Keeps exactly the span with id `id` (empty set if absent).
    #[must_use]
    pub fn by_span(self, id: SpanId) -> Self {
        self.filter(|s| s.id == id)
    }

    /// Keeps spans that closed with outcome `outcome`.
    #[must_use]
    pub fn by_outcome(self, outcome: &str) -> Self {
        self.filter(|s| s.outcome == Some(outcome))
    }

    /// Keeps spans that retried at least once.
    #[must_use]
    pub fn retried(self) -> Self {
        self.filter(|s| s.retries > 0)
    }

    /// Keeps still-open spans.
    #[must_use]
    pub fn open(self) -> Self {
        self.filter(SpanRecord::is_open)
    }

    /// Keeps closed spans.
    #[must_use]
    pub fn closed(self) -> Self {
        self.filter(|s| !s.is_open())
    }

    /// Keeps spans inside the subtree rooted at `root` — `root` itself
    /// plus every transitive child, regardless of the current
    /// selection's lineage gaps (parent walks use the full table).
    #[must_use]
    pub fn descendants(self, root: SpanId) -> Self {
        let all = self.all;
        let lookup = |id: SpanId| {
            let idx = (id.raw().checked_sub(1)).map_or(usize::MAX, |i| i as usize);
            all.get(idx)
        };
        self.filter(|s| {
            let mut cur = Some(s.id);
            while let Some(id) = cur {
                if id == root {
                    return true;
                }
                cur = lookup(id).and_then(|r| r.parent);
            }
            false
        })
    }

    /// True when the set is non-trivially rooted: every span in the set
    /// has an ancestor (or is itself) whose operation label is `op`.
    /// The causality assertion behind "every failover descends from a
    /// `shard_down` span".
    #[must_use]
    pub fn rooted_in(&self, op: &str) -> bool {
        self.picked.iter().all(|s| {
            let mut cur = Some(s.id);
            while let Some(id) = cur {
                match self.lookup(id) {
                    Some(r) if r.op == op => return true,
                    Some(r) => cur = r.parent,
                    None => return false,
                }
            }
            false
        })
    }

    /// Like [`SpanSet::rooted_in`], accepting any of several root
    /// operations — "every failover descends from a `shard_down` *or*
    /// a `wal_recover` span".
    #[must_use]
    pub fn rooted_in_any(&self, ops: &[&str]) -> bool {
        self.picked.iter().all(|s| {
            let mut cur = Some(s.id);
            while let Some(id) = cur {
                match self.lookup(id) {
                    Some(r) if ops.contains(&r.op) => return true,
                    Some(r) => cur = r.parent,
                    None => return false,
                }
            }
            false
        })
    }

    /// Closed-span durations, ascending — deterministic input for
    /// percentile cuts.
    #[must_use]
    pub fn durations(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self.picked.iter().filter_map(|s| s.duration()).collect();
        d.sort_unstable();
        d
    }

    /// Nearest-rank percentile (0–100) over closed-span durations, in
    /// simulated cycles. `None` when no span in the set has closed.
    /// Integer arithmetic only — byte-stable across platforms.
    #[must_use]
    pub fn duration_percentile(&self, pct: u64) -> Option<u64> {
        let d = self.durations();
        if d.is_empty() {
            return None;
        }
        let n = d.len() as u64;
        let rank = (n * pct.min(100)).div_ceil(100).max(1);
        Some(d[(rank - 1) as usize])
    }

    /// Total retry attempts charged across the set.
    #[must_use]
    pub fn retries_total(&self) -> u64 {
        self.picked
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.retries))
    }

    /// Number of spans in the set.
    #[must_use]
    pub fn count(&self) -> usize {
        self.picked.len()
    }

    /// True when nothing matched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.picked.is_empty()
    }

    /// The selected spans, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &'a SpanRecord> + '_ {
        self.picked.iter().copied()
    }

    /// The selected span ids, in id order.
    #[must_use]
    pub fn ids(&self) -> Vec<SpanId> {
        self.picked.iter().map(|s| s.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::TraceQuery;
    use crate::span::SpanCtx;
    use crate::trace::Tracer;

    fn storm_tracer() -> Tracer {
        let mut t = Tracer::new(64);
        // shard 1 dies; two streams fail over under the kill span.
        let kill = t.begin_span(100, "shard_down", SpanCtx::shard(1));
        let f1 = t.begin_span(101, "failover_stream", SpanCtx::child(kill).with_stream(7));
        t.end_span(105, f1, "ok");
        let f2 = t.begin_span(101, "failover_stream", SpanCtx::child(kill).with_stream(8));
        t.end_span(110, f2, "lost");
        t.end_span(111, kill, "ok");
        // an unrelated migration, retried once.
        let m = t.begin_span(
            200,
            "migrate_op",
            SpanCtx::shard(0).with_stream(9).with_token(42),
        );
        t.span_retry(m);
        t.end_span(230, m, "ok");
        t
    }

    #[test]
    fn combinators_narrow_and_count() {
        let t = storm_tracer();
        let q = TraceQuery::new(&t);
        assert_eq!(q.spans().count(), 4);
        assert_eq!(q.spans().by_kind("failover_stream").count(), 2);
        assert_eq!(
            q.spans()
                .by_kind("failover_stream")
                .by_outcome("lost")
                .count(),
            1
        );
        assert_eq!(q.spans().by_shard(1).count(), 1);
        assert_eq!(q.spans().by_stream(9).count(), 1);
        assert_eq!(q.spans().open().count(), 0);
        assert_eq!(q.spans().retried().count(), 1);
        assert_eq!(q.spans().retries_total(), 1);
    }

    #[test]
    fn lineage_descendants_and_rooting() {
        let t = storm_tracer();
        let q = TraceQuery::new(&t);
        let kill = q.spans().by_kind("shard_down").ids()[0];
        let sub = q.spans().descendants(kill);
        assert_eq!(sub.count(), 3); // kill + 2 failovers
        assert!(q.spans().by_kind("failover_stream").rooted_in("shard_down"));
        assert!(!q.spans().by_kind("migrate_op").rooted_in("shard_down"));
        // rooted_in on an empty set is vacuously true (no orphan).
        assert!(q.spans().by_kind("nope").rooted_in("shard_down"));
    }

    #[test]
    fn duration_percentiles_are_nearest_rank() {
        let t = storm_tracer();
        let q = TraceQuery::new(&t);
        let f = q.spans().by_kind("failover_stream");
        assert_eq!(f.durations(), vec![4, 9]);
        assert_eq!(f.duration_percentile(50), Some(4));
        assert_eq!(f.duration_percentile(99), Some(9));
        assert_eq!(f.duration_percentile(0), Some(4)); // rank clamps to 1
        assert_eq!(q.spans().by_kind("nope").duration_percentile(50), None);
    }

    #[test]
    fn events_are_queryable_by_span_and_kind() {
        let t = storm_tracer();
        let q = TraceQuery::new(&t);
        let kill = q.spans().by_kind("shard_down").ids()[0];
        let evs = q.events_in_span(kill);
        assert_eq!(evs.len(), 2); // span_begin + span_end
        assert_eq!(q.events_by_kind("span_end").len(), 4);
    }
}
