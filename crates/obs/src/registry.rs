//! The unified metrics registry: named counters, gauges and histograms
//! behind cheap copyable handles, with snapshot/diff and deterministic
//! JSON-lines + human-text exporters.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json_escape;

/// Handle to a registered counter. Cheap to copy and store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// The registry. Registration is idempotent by name: registering an
/// existing name of the same kind returns the original handle, so layers
/// constructed repeatedly (clones, rebuilt wrappers) share one slot.
/// Registering an existing name as a *different* kind panics — that is a
/// programming error, not a runtime condition.
///
/// The registry is `Clone`; a clone's metrics diverge from the original's
/// from that point on, matching the semantics of the plain counter structs
/// it replaces.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, Histogram)>,
    names: BTreeMap<String, (Kind, usize)>,
}

/// The value of one metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic (saturating) counter.
    Counter(u64),
    /// Point-in-time signed value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// An immutable, name-ordered capture of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter named `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == Kind::Counter, "metric {name} is not a counter");
            return CounterId(idx);
        }
        let idx = self.counters.len();
        self.counters.push((name.to_owned(), 0));
        self.names.insert(name.to_owned(), (Kind::Counter, idx));
        CounterId(idx)
    }

    /// Registers (or finds) a gauge named `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == Kind::Gauge, "metric {name} is not a gauge");
            return GaugeId(idx);
        }
        let idx = self.gauges.len();
        self.gauges.push((name.to_owned(), 0));
        self.names.insert(name.to_owned(), (Kind::Gauge, idx));
        GaugeId(idx)
    }

    /// Registers (or finds) a histogram named `name` with the given bucket
    /// upper bounds (ignored if the name already exists).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        if let Some(&(kind, idx)) = self.names.get(name) {
            assert!(kind == Kind::Histogram, "metric {name} is not a histogram");
            return HistogramId(idx);
        }
        let idx = self.hists.len();
        self.hists.push((name.to_owned(), Histogram::new(bounds)));
        self.names.insert(name.to_owned(), (Kind::Histogram, idx));
        HistogramId(idx)
    }

    /// Adds `n` to a counter, saturating at `u64::MAX`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        let slot = &mut self.counters[id.0].1;
        *slot = slot.saturating_add(n);
    }

    /// Increments a counter by one (saturating).
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Overwrites a counter (used by `reset`-style APIs of the legacy
    /// counter structs).
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].1 = v;
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].1 = v;
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0].1
    }

    /// Records one sample into a histogram.
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Borrows a histogram for reading.
    #[must_use]
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0].1
    }

    /// Looks a counter value up by name.
    #[must_use]
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.names.get(name) {
            Some(&(Kind::Counter, idx)) => Some(self.counters[idx].1),
            _ => None,
        }
    }

    /// Looks a gauge value up by name.
    #[must_use]
    pub fn gauge_by_name(&self, name: &str) -> Option<i64> {
        match self.names.get(name) {
            Some(&(Kind::Gauge, idx)) => Some(self.gauges[idx].1),
            _ => None,
        }
    }

    /// Looks a histogram up by name.
    #[must_use]
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        match self.names.get(name) {
            Some(&(Kind::Histogram, idx)) => Some(&self.hists[idx].1),
            _ => None,
        }
    }

    /// All registered metric names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.names.keys().cloned().collect()
    }

    /// Number of registered metrics across all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Registers (or finds) a counter named `name` under `scope`
    /// (`shard3/svc.opened`) — one registry serving N shards.
    ///
    /// # Panics
    ///
    /// If the scoped name is already registered as a different kind.
    pub fn scoped_counter(&mut self, scope: &crate::ScopeId, name: &str) -> CounterId {
        self.counter(&scope.metric(name))
    }

    /// Registers (or finds) a gauge named `name` under `scope`.
    ///
    /// # Panics
    ///
    /// If the scoped name is already registered as a different kind.
    pub fn scoped_gauge(&mut self, scope: &crate::ScopeId, name: &str) -> GaugeId {
        self.gauge(&scope.metric(name))
    }

    /// Registers (or finds) a histogram named `name` under `scope`.
    ///
    /// # Panics
    ///
    /// If the scoped name is already registered as a different kind.
    pub fn scoped_histogram(
        &mut self,
        scope: &crate::ScopeId,
        name: &str,
        bounds: &[u64],
    ) -> HistogramId {
        self.histogram(&scope.metric(name), bounds)
    }

    /// Captures every metric into an immutable, name-ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = BTreeMap::new();
        for (name, v) in &self.counters {
            entries.insert(name.clone(), MetricValue::Counter(*v));
        }
        for (name, v) in &self.gauges {
            entries.insert(name.clone(), MetricValue::Gauge(*v));
        }
        for (name, h) in &self.hists {
            entries.insert(name.clone(), MetricValue::Histogram(h.snapshot()));
        }
        MetricsSnapshot { entries }
    }
}

impl MetricsSnapshot {
    /// A copy of this snapshot with every metric name prefixed by
    /// `scope` and a `/` separator — how a cluster scopes the private
    /// registries of its shards into one namespaced report
    /// (`shard3/service.opened`). Ordering stays deterministic: the
    /// result is name-ordered like every snapshot.
    #[must_use]
    pub fn scoped(&self, scope: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(name, v)| (format!("{scope}/{name}"), *v))
                .collect(),
        }
    }

    /// Merges `other`'s metrics into this snapshot. Names must not
    /// collide (scope shards first — see [`MetricsSnapshot::scoped`]).
    ///
    /// # Panics
    ///
    /// If a metric name exists in both snapshots.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.entries {
            let prev = self.entries.insert(name.clone(), *v);
            assert!(prev.is_none(), "metric {name} present in both snapshots");
        }
    }

    /// The inverse of [`MetricsSnapshot::scoped`]: the metrics whose
    /// names start with `prefix` followed by `/`, with that prefix
    /// stripped. `restrict("shard1")` does not swallow `shard10/…`.
    #[must_use]
    pub fn restrict(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter_map(|(name, v)| {
                    let rest = name.strip_prefix(prefix)?.strip_prefix('/')?;
                    Some((rest.to_owned(), *v))
                })
                .collect(),
        }
    }

    /// The value recorded under `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Sorted `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of metrics captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metrics were captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Difference since `earlier`: counters and histogram count/sum are
    /// subtracted (saturating); gauges and histogram min/max/percentiles
    /// are taken from `self` (the later snapshot). Metrics absent from
    /// `earlier` pass through unchanged.
    #[must_use]
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut entries = BTreeMap::new();
        for (name, v) in &self.entries {
            let d = match (v, earlier.entries.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                    MetricValue::Histogram(HistogramSnapshot {
                        count: now.count.saturating_sub(then.count),
                        sum: now.sum.saturating_sub(then.sum),
                        ..*now
                    })
                }
                (v, _) => *v,
            };
            entries.insert(name.clone(), d);
        }
        MetricsSnapshot { entries }
    }

    /// JSON-lines export: one object per metric, sorted by name. Integer
    /// values only — deterministic across runs and platforms.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            let name = json_escape(name);
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{c}}}"
                    );
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{g}}}"
                    );
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                    );
                }
            }
        }
        out
    }

    /// Human-readable text export, sorted by name.
    #[must_use]
    pub fn render(&self) -> String {
        let width = self.entries.keys().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name:width$}  counter    {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name:width$}  gauge      {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:width$}  histogram  count={} sum={} min={} max={} p50={} p90={} p99={}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{MetricValue, MetricsRegistry};

    #[test]
    fn registration_is_idempotent_by_name() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        assert_eq!(a, b);
        r.add(a, 3);
        r.inc(b);
        assert_eq!(r.counter_value(a), 4);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_collision_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.add(c, u64::MAX - 1);
        r.add(c, 5);
        assert_eq!(r.counter_value(c), u64::MAX);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_keeps_gauges() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        r.add(c, 10);
        r.set_gauge(g, 7);
        let before = r.snapshot();
        r.add(c, 5);
        r.set_gauge(g, 9);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.get("c"), Some(&MetricValue::Counter(5)));
        assert_eq!(d.get("g"), Some(&MetricValue::Gauge(9)));
    }

    #[test]
    fn exports_are_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        let b = r.counter("b.second");
        let a = r.counter("a.first");
        let h = r.histogram("c.third", &[1, 2, 4]);
        r.add(a, 1);
        r.add(b, 2);
        r.observe(h, 3);
        let s = r.snapshot();
        let json = s.to_json_lines();
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("a.first"));
        assert!(lines[1].contains("b.second"));
        assert!(lines[2].contains("\"type\":\"histogram\""));
        assert_eq!(json, r.snapshot().to_json_lines());
        assert!(s.render().contains("a.first"));
    }

    #[test]
    fn clones_diverge_like_plain_counters() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("c");
        r.add(c, 1);
        let mut r2 = r.clone();
        r2.add(c, 10);
        assert_eq!(r.counter_value(c), 1);
        assert_eq!(r2.counter_value(c), 11);
    }
}
