//! Scoped metrics: one registry (or one merged snapshot) serving N
//! shards, with per-shard / per-lane / per-personality attribution.
//!
//! A [`ScopeId`] names the unit a metric belongs to — shard, lane
//! within a shard, personality — and turns into a deterministic path
//! prefix (`shard3`, `shard3/eth32`). [`ScopedView`] cuts one scope's
//! metrics back out of a merged snapshot with the prefix stripped, and
//! [`Rollup`] folds many per-scope snapshots into a single cluster
//! view with deterministic (scope-ordered) naming — the "per-shard
//! dashboards cut from the tagged metrics" the ROADMAP asked for.

use std::collections::BTreeMap;

use crate::registry::{MetricValue, MetricsSnapshot};

/// The unit a metric is attributed to. Ordering is derived from the
/// fields (numeric shard index first), so `shard10` sorts after
/// `shard9` — scope order, not string order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ScopeId {
    shard: Option<u64>,
    name: Option<String>,
    lane: Option<String>,
    personality: Option<String>,
}

impl ScopeId {
    /// Scope for shard `idx` (path `shard{idx}`).
    #[must_use]
    pub fn shard(idx: u64) -> Self {
        ScopeId {
            shard: Some(idx),
            ..ScopeId::default()
        }
    }

    /// Free-form named scope (path `name`) — for non-shard units like
    /// the cluster control plane itself.
    #[must_use]
    pub fn named(name: &str) -> Self {
        ScopeId {
            name: Some(name.to_owned()),
            ..ScopeId::default()
        }
    }

    /// Returns `self` narrowed to one lane (path `…/{lane}`).
    #[must_use]
    pub fn with_lane(mut self, lane: &str) -> Self {
        self.lane = Some(lane.to_owned());
        self
    }

    /// Returns `self` narrowed to one personality (path
    /// `…/{personality}`).
    #[must_use]
    pub fn with_personality(mut self, personality: &str) -> Self {
        self.personality = Some(personality.to_owned());
        self
    }

    /// The shard index, when this scope is shard-rooted.
    #[must_use]
    pub fn shard_index(&self) -> Option<u64> {
        self.shard
    }

    /// The deterministic path prefix: `shard3`, `shard3/eth32`,
    /// `cluster`, … Segments are joined with `/`.
    #[must_use]
    pub fn path(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(s) = self.shard {
            parts.push(format!("shard{s}"));
        }
        if let Some(n) = &self.name {
            parts.push(n.clone());
        }
        if let Some(l) = &self.lane {
            parts.push(l.clone());
        }
        if let Some(p) = &self.personality {
            parts.push(p.clone());
        }
        if parts.is_empty() {
            parts.push("global".to_owned());
        }
        parts.join("/")
    }

    /// Full metric name for `name` under this scope
    /// (`shard3/breaker.state`).
    #[must_use]
    pub fn metric(&self, name: &str) -> String {
        format!("{}/{name}", self.path())
    }
}

/// A read-only cut of one scope out of a (merged) snapshot: iterates
/// the metrics under the scope's path with the prefix stripped.
#[derive(Debug, Clone)]
pub struct ScopedView<'a> {
    snap: &'a MetricsSnapshot,
    prefix: String,
}

impl<'a> ScopedView<'a> {
    /// Views `scope`'s metrics inside `snap`.
    #[must_use]
    pub fn new(snap: &'a MetricsSnapshot, scope: &ScopeId) -> Self {
        ScopedView {
            snap,
            prefix: scope.path(),
        }
    }

    /// The scope path this view cuts.
    #[must_use]
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The value recorded under `name` within this scope.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&'a MetricValue> {
        self.snap.get(&format!("{}/{name}", self.prefix))
    }

    /// Sorted `(stripped name, value)` pairs under this scope.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, &'a MetricValue)> + '_ {
        let want = &self.prefix;
        self.snap.iter().filter_map(move |(name, v)| {
            let rest = name.strip_prefix(want.as_str())?;
            let rest = rest.strip_prefix('/')?;
            Some((rest, v))
        })
    }

    /// Number of metrics under this scope.
    #[must_use]
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True when the scope has no metrics in the snapshot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }

    /// Materializes the view as a standalone snapshot with the scope
    /// prefix stripped.
    #[must_use]
    pub fn to_snapshot(&self) -> MetricsSnapshot {
        self.snap.restrict(&self.prefix)
    }
}

/// Deterministic fold of many per-scope snapshots into one cluster
/// view. Scopes are kept in [`ScopeId`] order, so the merged snapshot
/// and every derived export are byte-stable across runs.
#[derive(Debug, Clone, Default)]
pub struct Rollup {
    parts: BTreeMap<ScopeId, MetricsSnapshot>,
}

impl Rollup {
    /// An empty rollup.
    #[must_use]
    pub fn new() -> Self {
        Rollup::default()
    }

    /// Adds one scope's snapshot.
    ///
    /// # Panics
    ///
    /// If `scope` was already added — double-adding a shard would
    /// silently shadow metrics.
    pub fn add(&mut self, scope: ScopeId, snap: MetricsSnapshot) {
        let path = scope.path();
        let prev = self.parts.insert(scope, snap);
        assert!(prev.is_none(), "scope {path} already added to rollup");
    }

    /// The scopes folded in, in deterministic order.
    pub fn scopes(&self) -> impl Iterator<Item = &ScopeId> {
        self.parts.keys()
    }

    /// One scope's snapshot, if present.
    #[must_use]
    pub fn get(&self, scope: &ScopeId) -> Option<&MetricsSnapshot> {
        self.parts.get(scope)
    }

    /// Number of scopes folded in.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no scope has been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The merged cluster view: every scope's snapshot prefixed with
    /// its path and merged. Name-ordered like every snapshot; panics
    /// only if two scopes produce a colliding prefixed name, which the
    /// unique-scope invariant of [`Rollup::add`] prevents.
    #[must_use]
    pub fn merged(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (scope, snap) in &self.parts {
            out.merge(&snap.scoped(&scope.path()));
        }
        out
    }

    /// Sum of counter `name` across every scope that records it — the
    /// cluster-total cut of a per-shard counter.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.parts
            .values()
            .filter_map(|s| match s.get(name) {
                Some(MetricValue::Counter(c)) => Some(*c),
                _ => None,
            })
            .fold(0u64, u64::saturating_add)
    }
}

#[cfg(test)]
mod tests {
    use super::{Rollup, ScopeId, ScopedView};
    use crate::registry::{MetricValue, MetricsRegistry};

    #[test]
    fn scope_paths_compose_and_order_numerically() {
        assert_eq!(ScopeId::shard(3).path(), "shard3");
        assert_eq!(ScopeId::shard(3).with_lane("eth32").path(), "shard3/eth32");
        assert_eq!(
            ScopeId::shard(0).with_personality("crc32").path(),
            "shard0/crc32"
        );
        assert_eq!(ScopeId::named("cluster").path(), "cluster");
        assert_eq!(ScopeId::default().path(), "global");
        assert_eq!(
            ScopeId::shard(3).metric("breaker.state"),
            "shard3/breaker.state"
        );
        let mut v = [ScopeId::shard(10), ScopeId::shard(9), ScopeId::shard(2)];
        v.sort();
        assert_eq!(v[0], ScopeId::shard(2));
        assert_eq!(v[2], ScopeId::shard(10));
    }

    #[test]
    fn scoped_view_cuts_and_strips() {
        let mut r = MetricsRegistry::new();
        let a = r.scoped_counter(&ScopeId::shard(1), "svc.opened");
        let b = r.scoped_counter(&ScopeId::shard(2), "svc.opened");
        let g = r.scoped_gauge(&ScopeId::shard(1), "breaker.state");
        r.add(a, 5);
        r.add(b, 7);
        r.set_gauge(g, 2);
        let snap = r.snapshot();
        let v1 = ScopedView::new(&snap, &ScopeId::shard(1));
        assert_eq!(v1.get("svc.opened"), Some(&MetricValue::Counter(5)));
        assert_eq!(v1.get("breaker.state"), Some(&MetricValue::Gauge(2)));
        assert_eq!(v1.len(), 2);
        let names: Vec<&str> = v1.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["breaker.state", "svc.opened"]);
        let v2 = ScopedView::new(&snap, &ScopeId::shard(2));
        assert_eq!(v2.len(), 1);
        let sub = v1.to_snapshot();
        assert_eq!(sub.get("svc.opened"), Some(&MetricValue::Counter(5)));
        // shard1 must not swallow a hypothetical shard10.
        let c10 = ScopedView::new(&snap, &ScopeId::shard(10));
        assert!(c10.is_empty());
    }

    #[test]
    fn rollup_merges_deterministically_and_sums() {
        let mk = |n: u64| {
            let mut r = MetricsRegistry::new();
            let c = r.counter("svc.opened");
            r.add(c, n);
            r.snapshot()
        };
        let mut roll = Rollup::new();
        roll.add(ScopeId::shard(1), mk(10));
        roll.add(ScopeId::shard(0), mk(4));
        let merged = roll.merged();
        assert_eq!(
            merged.get("shard0/svc.opened"),
            Some(&MetricValue::Counter(4))
        );
        assert_eq!(
            merged.get("shard1/svc.opened"),
            Some(&MetricValue::Counter(10))
        );
        assert_eq!(roll.counter_total("svc.opened"), 14);
        assert_eq!(merged.to_json_lines(), roll.merged().to_json_lines());
        let order: Vec<String> = roll.scopes().map(ScopeId::path).collect();
        assert_eq!(order, vec!["shard0", "shard1"]);
    }

    #[test]
    #[should_panic(expected = "already added")]
    fn rollup_rejects_duplicate_scope() {
        let mut roll = Rollup::new();
        roll.add(ScopeId::shard(0), MetricsRegistry::new().snapshot());
        roll.add(ScopeId::shard(0), MetricsRegistry::new().snapshot());
    }
}
