//! Causal operation spans: cycle-stamped begin/end records with parent
//! lineage, wrapping the multi-step operations of the cluster control
//! plane (migrate → transfer → restore, drain → rehost, crash → replay).
//!
//! Spans live in a side table on the [`crate::Tracer`] — a plain `Vec`
//! that is *not* subject to the event ring's drop policy, so open-span
//! leak detection stays sound even after the ring wraps. Like every
//! other obs structure they are stamped with the *simulated* cycle
//! count, never a wall clock: two runs with the same seed produce
//! byte-identical span tables.

/// Identifier of one span. Ids are assigned sequentially starting at 1
/// by [`crate::Tracer::begin_span`]; 0 is never a valid id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Builds a `SpanId` from its raw value (for replaying exported
    /// traces; live code should only use ids returned by `begin_span`).
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The raw id value — what event records carry in their `span`
    /// field.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Correlation context attached to a span at begin time. All fields are
/// optional; `SpanCtx::default()` is a root span with no correlation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCtx {
    /// Enclosing span, when this operation runs inside another.
    pub parent: Option<SpanId>,
    /// Correlated shard index, when the operation targets a shard.
    pub shard: Option<u64>,
    /// Correlated stream id, when the operation targets a stream.
    pub stream: Option<u64>,
    /// Idempotency token fencing the operation, when tokenized —
    /// the retry lineage: every attempt of a retried operation shares
    /// one token and therefore one span.
    pub token: Option<u64>,
}

impl SpanCtx {
    /// A root-span context correlated to `shard`.
    #[must_use]
    pub fn shard(shard: u64) -> Self {
        SpanCtx {
            shard: Some(shard),
            ..SpanCtx::default()
        }
    }

    /// A child-span context under `parent`.
    #[must_use]
    pub fn child(parent: SpanId) -> Self {
        SpanCtx {
            parent: Some(parent),
            ..SpanCtx::default()
        }
    }

    /// Returns `self` with the stream correlation set.
    #[must_use]
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.stream = Some(stream);
        self
    }

    /// Returns `self` with the shard correlation set.
    #[must_use]
    pub fn with_shard(mut self, shard: u64) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Returns `self` with the idempotency-token correlation set.
    #[must_use]
    pub fn with_token(mut self, token: u64) -> Self {
        self.token = Some(token);
        self
    }
}

/// One span: an operation's begin/end cycle stamps, outcome, lineage
/// and correlation ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Stable operation label (`migrate`, `shard_down`, `wal_recover`, …).
    pub op: &'static str,
    /// Correlated shard index.
    pub shard: Option<u64>,
    /// Correlated stream id.
    pub stream: Option<u64>,
    /// Idempotency token fencing the operation.
    pub token: Option<u64>,
    /// Retry attempts charged inside this span (see
    /// [`crate::Tracer::span_retry`]).
    pub retries: u64,
    /// Simulated cycle at which the operation began.
    pub begin_cycle: u64,
    /// Simulated cycle at which it ended; `None` while still open.
    pub end_cycle: Option<u64>,
    /// Outcome label recorded at end time (`ok`, `aborted`, `lost`, …);
    /// `None` while still open.
    pub outcome: Option<&'static str>,
}

impl SpanRecord {
    /// True while the span has begun but not ended.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.end_cycle.is_none()
    }

    /// Duration in simulated cycles, once closed.
    #[must_use]
    pub fn duration(&self) -> Option<u64> {
        self.end_cycle
            .map(|end| end.saturating_sub(self.begin_cycle))
    }
}

#[cfg(test)]
mod tests {
    use super::{SpanCtx, SpanId, SpanRecord};

    #[test]
    fn ctx_builders_compose() {
        let c = SpanCtx::shard(3).with_stream(7).with_token(9);
        assert_eq!(c.shard, Some(3));
        assert_eq!(c.stream, Some(7));
        assert_eq!(c.token, Some(9));
        assert_eq!(c.parent, None);
        let k = SpanCtx::child(SpanId::from_raw(1)).with_shard(2);
        assert_eq!(k.parent, Some(SpanId::from_raw(1)));
        assert_eq!(k.shard, Some(2));
    }

    #[test]
    fn duration_is_saturating_and_open_aware() {
        let mut s = SpanRecord {
            id: SpanId::from_raw(1),
            parent: None,
            op: "migrate",
            shard: None,
            stream: None,
            token: None,
            retries: 0,
            begin_cycle: 10,
            end_cycle: None,
            outcome: None,
        };
        assert!(s.is_open());
        assert_eq!(s.duration(), None);
        s.end_cycle = Some(25);
        s.outcome = Some("ok");
        assert!(!s.is_open());
        assert_eq!(s.duration(), Some(15));
    }
}
