//! Cycle-stamped structured event tracing over a bounded ring buffer.
//!
//! Events carry the fabric's *simulated* cycle count as their timestamp —
//! never a wall clock — so two runs with the same seed produce
//! byte-identical traces. A monotonically increasing sequence number keeps
//! global ordering even after the ring drops old events.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::json_escape;
use crate::span::{SpanCtx, SpanId, SpanRecord};

/// What happened. Variants mirror the decision points of the simulated
/// stack: fabric reconfiguration, configuration-cache behaviour, the
/// scrub/probe/recovery ladder, and stream-service admission control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A configuration bitstream was written into a context slot.
    ContextLoad {
        /// Destination context slot.
        slot: usize,
    },
    /// The active context changed (pipeline break, 2-cycle switch).
    ContextSwitch {
        /// Newly active context slot.
        slot: usize,
    },
    /// A personality was already resident — configuration-cache hit.
    ContextHit {
        /// Slot that was reused.
        slot: usize,
    },
    /// A resident personality was evicted to make room.
    ContextEvict {
        /// Slot whose occupant was displaced.
        slot: usize,
    },
    /// A configuration scrub pass completed.
    ScrubRun {
        /// Corrupted contexts found by this pass.
        findings: u64,
    },
    /// A self-check probe (checksum or datapath) completed.
    ProbeRun {
        /// Whether the probe passed.
        ok: bool,
    },
    /// A fault was detected (scrub finding or failed probe).
    Detection,
    /// The recovery ladder started for a lane.
    RecoveryStart,
    /// The recovery ladder finished.
    RecoveryOutcome {
        /// Ladder rung that resolved it: `healed_reload`,
        /// `healed_resynthesis`, `software_fallback`, `checkpoint_park`
        /// or `unrecovered`.
        outcome: &'static str,
    },
    /// A stream was admitted and a session opened.
    StreamAdmit,
    /// A stream or chunk was shed by admission control.
    StreamShed {
        /// Which gate rejected it (e.g. `overload`, `capacity`,
        /// `admission`, `queue_full`, `global_full`).
        reason: &'static str,
    },
    /// A session was parked (checkpointed out of the active set).
    StreamPark {
        /// Why: `idle`, `fault` or `explicit`.
        reason: &'static str,
    },
    /// A parked session was resumed.
    StreamResume,
    /// A session finished and delivered its digest.
    StreamComplete,
    /// A session was migrated to the software CRC path.
    Degrade,
    /// The overload ladder moved.
    LevelTransition {
        /// Level before the move.
        from: &'static str,
        /// Level after the move.
        to: &'static str,
    },
    /// A batch was rolled back and re-run after a mid-batch fault.
    BatchRollback {
        /// Streams whose chunks were re-queued.
        streams: u64,
    },
    /// A session was checkpointed out of this node for cross-shard
    /// migration (the snapshot leaves with the caller).
    StreamDetach,
    /// Cluster-level: a shard changed lifecycle state.
    ShardState {
        /// The shard's index in the cluster.
        shard: u64,
        /// State before (`active`, `draining`, `down`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// Cluster-level: a stream migrated between shards (checkpoint →
    /// transfer → restore, digest-verified).
    StreamMigrate {
        /// Source shard index.
        from_shard: u64,
        /// Target shard index.
        to_shard: u64,
    },
    /// Cluster-level: a stream was replayed from its last known
    /// checkpoint onto a survivor after its shard died.
    StreamFailover {
        /// The dead shard's index.
        from_shard: u64,
        /// The surviving shard now serving the stream.
        to_shard: u64,
    },
    /// Cluster-level: a stream on a dead shard could not be recovered
    /// and was declared lost (typed, never silent).
    StreamLost {
        /// The dead shard's index.
        shard: u64,
        /// Why: `no_checkpoint` or `incompatible`.
        reason: &'static str,
    },
    /// Chaos-level: the chaos scheduler injected a typed disturbance
    /// (slowdown, transfer corruption, byzantine probe, …).
    ChaosInject {
        /// Which disturbance (e.g. `slowdown`, `transfer_corrupt`,
        /// `transfer_truncate`, `byzantine_health`, `flapping_fault`,
        /// `admission_storm`).
        what: &'static str,
    },
    /// Cluster-level: a shard's circuit breaker changed state.
    BreakerState {
        /// State before (`closed`, `open`, `half_open`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// Cluster-level: a tokenized control-plane operation is being
    /// retried after a transient failure, with a deterministic backoff.
    OpRetry {
        /// 1-based attempt number about to run.
        attempt: u64,
        /// Backoff delay (ticks) charged before this attempt.
        delay: u64,
    },
    /// Cluster-level: the load rebalancer ran and moved streams.
    RebalanceRun {
        /// Streams migrated hottest→coldest this pass.
        moved: u64,
    },
    /// Cluster-level: a health-monitor death verdict was vetoed by a
    /// direct confirmation probe (byzantine-probe defense).
    RetireVeto,
    /// Cluster-level: a drained shard was rebuilt and reopened
    /// (rolling-upgrade rehost).
    ShardReopen,
    /// Cluster-level: a rolling upgrade advanced a stage.
    UpgradeStage {
        /// The stage entered (`drain`, `rehost`, `done`).
        stage: &'static str,
    },
    /// A causal span opened (see [`crate::SpanRecord`]). The event's
    /// `span` field carries the new span's id; the span table holds the
    /// authoritative record.
    SpanBegin {
        /// The span's operation label.
        op: &'static str,
    },
    /// A causal span closed with an outcome.
    SpanEnd {
        /// The span's operation label.
        op: &'static str,
        /// Outcome recorded at end time (`ok`, `aborted`, `lost`, …).
        outcome: &'static str,
    },
    /// Cluster-level: the control plane was rebuilt from its
    /// write-ahead log after a whole-cluster crash.
    WalRecovered {
        /// Complete frames the replay accepted.
        frames: u64,
        /// CRC-rejected frames the replay skipped.
        corrupt: u64,
        /// Whether the durable log ended in a torn (truncated) frame.
        torn_tail: bool,
        /// Streams restored to a serving shard.
        restored: u64,
        /// Streams declared lost (typed, never silent).
        lost: u64,
    },
}

impl EventKind {
    /// Stable, machine-friendly label for the event type.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::ContextLoad { .. } => "context_load",
            EventKind::ContextSwitch { .. } => "context_switch",
            EventKind::ContextHit { .. } => "context_hit",
            EventKind::ContextEvict { .. } => "context_evict",
            EventKind::ScrubRun { .. } => "scrub_run",
            EventKind::ProbeRun { .. } => "probe_run",
            EventKind::Detection => "detection",
            EventKind::RecoveryStart => "recovery_start",
            EventKind::RecoveryOutcome { .. } => "recovery_outcome",
            EventKind::StreamAdmit => "stream_admit",
            EventKind::StreamShed { .. } => "stream_shed",
            EventKind::StreamPark { .. } => "stream_park",
            EventKind::StreamResume => "stream_resume",
            EventKind::StreamComplete => "stream_complete",
            EventKind::Degrade => "degrade",
            EventKind::LevelTransition { .. } => "level_transition",
            EventKind::BatchRollback { .. } => "batch_rollback",
            EventKind::StreamDetach => "stream_detach",
            EventKind::ShardState { .. } => "shard_state",
            EventKind::StreamMigrate { .. } => "stream_migrate",
            EventKind::StreamFailover { .. } => "stream_failover",
            EventKind::StreamLost { .. } => "stream_lost",
            EventKind::ChaosInject { .. } => "chaos_inject",
            EventKind::BreakerState { .. } => "breaker_state",
            EventKind::OpRetry { .. } => "op_retry",
            EventKind::RebalanceRun { .. } => "rebalance_run",
            EventKind::RetireVeto => "retire_veto",
            EventKind::ShardReopen => "shard_reopen",
            EventKind::UpgradeStage { .. } => "upgrade_stage",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::WalRecovered { .. } => "wal_recovered",
        }
    }

    /// The variant's payload as deterministic `(key, value)` pairs.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, String)> {
        match self {
            EventKind::ContextLoad { slot }
            | EventKind::ContextSwitch { slot }
            | EventKind::ContextHit { slot }
            | EventKind::ContextEvict { slot } => vec![("slot", slot.to_string())],
            EventKind::ScrubRun { findings } => vec![("findings", findings.to_string())],
            EventKind::ProbeRun { ok } => vec![("ok", ok.to_string())],
            EventKind::RecoveryOutcome { outcome } => vec![("outcome", (*outcome).to_string())],
            EventKind::StreamShed { reason } | EventKind::StreamPark { reason } => {
                vec![("reason", (*reason).to_string())]
            }
            EventKind::LevelTransition { from, to } => {
                vec![("from", (*from).to_string()), ("to", (*to).to_string())]
            }
            EventKind::BatchRollback { streams } => vec![("streams", streams.to_string())],
            EventKind::ShardState { shard, from, to } => vec![
                ("shard", shard.to_string()),
                ("from", (*from).to_string()),
                ("to", (*to).to_string()),
            ],
            EventKind::StreamMigrate {
                from_shard,
                to_shard,
            }
            | EventKind::StreamFailover {
                from_shard,
                to_shard,
            } => vec![
                ("from_shard", from_shard.to_string()),
                ("to_shard", to_shard.to_string()),
            ],
            EventKind::StreamLost { shard, reason } => vec![
                ("shard", shard.to_string()),
                ("reason", (*reason).to_string()),
            ],
            EventKind::ChaosInject { what } => vec![("what", (*what).to_string())],
            EventKind::BreakerState { from, to } => {
                vec![("from", (*from).to_string()), ("to", (*to).to_string())]
            }
            EventKind::OpRetry { attempt, delay } => vec![
                ("attempt", attempt.to_string()),
                ("delay", delay.to_string()),
            ],
            EventKind::RebalanceRun { moved } => vec![("moved", moved.to_string())],
            EventKind::UpgradeStage { stage } => vec![("stage", (*stage).to_string())],
            EventKind::SpanBegin { op } => vec![("op", (*op).to_string())],
            EventKind::SpanEnd { op, outcome } => vec![
                ("op", (*op).to_string()),
                ("outcome", (*outcome).to_string()),
            ],
            EventKind::WalRecovered {
                frames,
                corrupt,
                torn_tail,
                restored,
                lost,
            } => vec![
                ("frames", frames.to_string()),
                ("corrupt", corrupt.to_string()),
                ("torn_tail", torn_tail.to_string()),
                ("restored", restored.to_string()),
                ("lost", lost.to_string()),
            ],
            EventKind::Detection
            | EventKind::RecoveryStart
            | EventKind::StreamAdmit
            | EventKind::StreamResume
            | EventKind::StreamComplete
            | EventKind::Degrade
            | EventKind::StreamDetach
            | EventKind::RetireVeto
            | EventKind::ShardReopen => Vec::new(),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (monotonic, survives ring-buffer drops).
    pub seq: u64,
    /// Simulated fabric cycle at record time.
    pub cycle: u64,
    /// Correlated stream id, when the event belongs to a session.
    pub stream: Option<u64>,
    /// Correlated personality/lane name, when known.
    pub lane: Option<String>,
    /// Enclosing causal span's raw id, when the event happened inside
    /// one (see [`crate::SpanId`]).
    pub span: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tracer {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<TraceEvent>,
    spans: Vec<SpanRecord>,
    span_misuse: u64,
}

impl Tracer {
    /// Creates a tracer holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
            buf: VecDeque::new(),
            spans: Vec::new(),
            span_misuse: 0,
        }
    }

    /// Records an event stamped with simulated `cycle`, with optional
    /// stream/personality correlation ids. Drops the oldest event when
    /// full.
    pub fn record(&mut self, cycle: u64, stream: Option<u64>, lane: Option<&str>, kind: EventKind) {
        self.push(cycle, None, stream, lane, kind);
    }

    /// Records an event inside causal span `span` (same drop policy as
    /// [`Tracer::record`]).
    pub fn record_in_span(
        &mut self,
        cycle: u64,
        span: SpanId,
        stream: Option<u64>,
        lane: Option<&str>,
        kind: EventKind,
    ) {
        self.push(cycle, Some(span.raw()), stream, lane, kind);
    }

    fn push(
        &mut self,
        cycle: u64,
        span: Option<u64>,
        stream: Option<u64>,
        lane: Option<&str>,
        kind: EventKind,
    ) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.buf.push_back(TraceEvent {
            seq: self.next_seq,
            cycle,
            stream,
            lane: lane.map(str::to_owned),
            span,
            kind,
        });
        self.next_seq = self.next_seq.saturating_add(1);
    }

    /// Opens a causal span for operation `op` at simulated `cycle` with
    /// the given correlation context, records a
    /// [`EventKind::SpanBegin`] event inside it, and returns its id.
    ///
    /// The span table is a plain `Vec` outside the event ring: spans
    /// are never dropped, so open-span accounting survives ring wraps.
    pub fn begin_span(&mut self, cycle: u64, op: &'static str, ctx: SpanCtx) -> SpanId {
        let id = SpanId::from_raw(self.spans.len() as u64 + 1);
        self.spans.push(SpanRecord {
            id,
            parent: ctx.parent,
            op,
            shard: ctx.shard,
            stream: ctx.stream,
            token: ctx.token,
            retries: 0,
            begin_cycle: cycle,
            end_cycle: None,
            outcome: None,
        });
        self.push(
            cycle,
            Some(id.raw()),
            ctx.stream,
            None,
            EventKind::SpanBegin { op },
        );
        id
    }

    /// Closes span `id` at simulated `cycle` with `outcome`, recording
    /// a [`EventKind::SpanEnd`] event inside it. Ending an unknown or
    /// already-closed span is counted in [`Tracer::span_misuse`] and
    /// otherwise ignored — never a panic in the serving path.
    pub fn end_span(&mut self, cycle: u64, id: SpanId, outcome: &'static str) {
        let Some(rec) = self.span_mut(id) else {
            self.span_misuse = self.span_misuse.saturating_add(1);
            return;
        };
        if rec.end_cycle.is_some() {
            self.span_misuse = self.span_misuse.saturating_add(1);
            return;
        }
        rec.end_cycle = Some(cycle.max(rec.begin_cycle));
        rec.outcome = Some(outcome);
        let (op, stream) = (rec.op, rec.stream);
        self.push(
            cycle,
            Some(id.raw()),
            stream,
            None,
            EventKind::SpanEnd { op, outcome },
        );
    }

    /// Charges one retry attempt to span `id` (unknown ids are counted
    /// as misuse and ignored).
    pub fn span_retry(&mut self, id: SpanId) {
        if let Some(rec) = self.span_mut(id) {
            rec.retries = rec.retries.saturating_add(1);
        } else {
            self.span_misuse = self.span_misuse.saturating_add(1);
        }
    }

    fn span_mut(&mut self, id: SpanId) -> Option<&mut SpanRecord> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.spans.get_mut(idx)
    }

    /// The span table, in id order (id `n` is at index `n - 1`).
    #[must_use]
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Looks one span up by id.
    #[must_use]
    pub fn span(&self, id: SpanId) -> Option<&SpanRecord> {
        let idx = id.raw().checked_sub(1)? as usize;
        self.spans.get(idx)
    }

    /// Number of spans begun but not yet ended. A steady state of 0 at
    /// campaign end is the open-span-leak gate.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.spans.iter().filter(|s| s.is_open()).count()
    }

    /// Misuse count: `end_span`/`span_retry` calls against unknown or
    /// already-closed spans.
    #[must_use]
    pub fn span_misuse(&self) -> u64 {
        self.span_misuse
    }

    /// Ends every still-open span at `cycle` with `outcome`, returning
    /// how many were closed. For harnesses that simulate a power loss:
    /// the crash is what truthfully ended those operations, so the
    /// crashed epoch's span table is closed out before being adopted
    /// into the campaign accumulator.
    pub fn close_open_spans(&mut self, cycle: u64, outcome: &'static str) -> usize {
        let open: Vec<SpanId> = self
            .spans
            .iter()
            .filter(|s| s.is_open())
            .map(|s| s.id)
            .collect();
        for id in &open {
            self.end_span(cycle, *id, outcome);
        }
        open.len()
    }

    /// Moves another tracer's span table into this one, rebasing ids
    /// (and parent links) past the spans already held, and merging its
    /// misuse count. How a multi-epoch campaign accumulates the span
    /// tables of per-epoch tracers into one queryable table.
    pub fn adopt_spans(&mut self, other: &Tracer) {
        let base = self.spans.len() as u64;
        for s in &other.spans {
            let mut s = s.clone();
            s.id = SpanId::from_raw(s.id.raw() + base);
            s.parent = s.parent.map(|p| SpanId::from_raw(p.raw() + base));
            self.spans.push(s);
        }
        self.span_misuse = self.span_misuse.saturating_add(other.span_misuse);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all retained events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Deterministic one-line-per-event text rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            let _ = write!(
                out,
                "seq={} cycle={} kind={}",
                e.seq,
                e.cycle,
                e.kind.label()
            );
            if let Some(s) = e.stream {
                let _ = write!(out, " stream={s}");
            }
            if let Some(lane) = &e.lane {
                let _ = write!(out, " lane={lane}");
            }
            if let Some(span) = e.span {
                let _ = write!(out, " span={span}");
            }
            for (k, v) in e.kind.fields() {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }

    /// JSON-lines export, one event object per line, oldest first.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            let _ = write!(
                out,
                "{{\"seq\":{},\"cycle\":{},\"kind\":\"{}\"",
                e.seq,
                e.cycle,
                e.kind.label()
            );
            if let Some(s) = e.stream {
                let _ = write!(out, ",\"stream\":{s}");
            }
            if let Some(lane) = &e.lane {
                let _ = write!(out, ",\"lane\":\"{}\"", json_escape(lane));
            }
            if let Some(span) = e.span {
                let _ = write!(out, ",\"span\":{span}");
            }
            for (k, v) in e.kind.fields() {
                // Numeric payloads stay numeric; everything else is quoted.
                if v.chars().all(|c| c.is_ascii_digit()) {
                    let _ = write!(out, ",\"{k}\":{v}");
                } else {
                    let _ = write!(out, ",\"{k}\":\"{}\"", json_escape(&v));
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::{EventKind, SpanCtx, SpanId, Tracer};

    #[test]
    fn ring_drops_oldest_and_keeps_sequence() {
        let mut t = Tracer::new(2);
        t.record(1, None, None, EventKind::Detection);
        t.record(2, None, None, EventKind::StreamAdmit);
        t.record(3, Some(7), Some("eth32"), EventKind::StreamComplete);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.recorded(), 3);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn render_is_deterministic_and_structured() {
        let mut t = Tracer::new(8);
        t.record(
            10,
            Some(1),
            Some("eth32"),
            EventKind::StreamShed { reason: "overload" },
        );
        t.record(
            12,
            None,
            None,
            EventKind::LevelTransition {
                from: "Normal",
                to: "RejectNew",
            },
        );
        let r = t.render();
        assert!(r.contains("seq=0 cycle=10 kind=stream_shed stream=1 lane=eth32 reason=overload"));
        assert!(r.contains("from=Normal to=RejectNew"));
        assert_eq!(r, t.clone().render());
        let j = t.to_json_lines();
        assert!(j.contains("\"kind\":\"stream_shed\""));
        assert!(j.contains("\"stream\":1"));
        assert!(j.contains("\"reason\":\"overload\""));
    }

    #[test]
    fn spans_nest_close_and_survive_ring_wrap() {
        let mut t = Tracer::new(2);
        let root = t.begin_span(10, "shard_down", SpanCtx::shard(1));
        let child = t.begin_span(11, "failover_stream", SpanCtx::child(root).with_stream(7));
        assert_eq!(t.open_spans(), 2);
        t.end_span(14, child, "ok");
        t.end_span(20, root, "ok");
        // The 2-slot ring has long since dropped the begin events…
        assert!(t.dropped() > 0);
        // …but the span table is complete and closed.
        assert_eq!(t.open_spans(), 0);
        assert_eq!(t.spans().len(), 2);
        let c = t.span(child).unwrap();
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.stream, Some(7));
        assert_eq!(c.duration(), Some(3));
        assert_eq!(c.outcome, Some("ok"));
        assert_eq!(t.span_misuse(), 0);
    }

    #[test]
    fn span_misuse_is_counted_not_panicked() {
        let mut t = Tracer::new(8);
        let s = t.begin_span(1, "migrate", SpanCtx::default());
        t.end_span(2, s, "ok");
        t.end_span(3, s, "ok"); // double end
        t.end_span(3, SpanId::from_raw(99), "ok"); // unknown id
        t.span_retry(SpanId::from_raw(99)); // unknown id
        assert_eq!(t.span_misuse(), 3);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn span_events_are_rendered_with_span_field() {
        let mut t = Tracer::new(8);
        let s = t.begin_span(5, "migrate", SpanCtx::shard(0).with_stream(3));
        t.record_in_span(
            6,
            s,
            Some(3),
            None,
            EventKind::OpRetry {
                attempt: 2,
                delay: 4,
            },
        );
        t.span_retry(s);
        t.end_span(9, s, "ok");
        let r = t.render();
        assert!(r.contains("kind=span_begin stream=3 span=1 op=migrate"));
        assert!(r.contains("kind=op_retry stream=3 span=1 attempt=2 delay=4"));
        assert!(r.contains("kind=span_end stream=3 span=1 op=migrate outcome=ok"));
        let j = t.to_json_lines();
        assert!(j.contains("\"span\":1"));
        assert!(j.contains("\"outcome\":\"ok\""));
        assert_eq!(t.span(s).unwrap().retries, 1);
    }

    #[test]
    fn adopt_spans_rebases_ids_and_parents() {
        let mut a = Tracer::new(8);
        let ra = a.begin_span(1, "wal_recover", SpanCtx::default());
        a.end_span(2, ra, "ok");
        let mut b = Tracer::new(8);
        let rb = b.begin_span(3, "shard_down", SpanCtx::shard(0));
        let cb = b.begin_span(4, "failover_stream", SpanCtx::child(rb));
        b.end_span(5, cb, "ok");
        b.end_span(6, rb, "ok");
        a.adopt_spans(&b);
        assert_eq!(a.spans().len(), 3);
        let adopted_child = &a.spans()[2];
        assert_eq!(adopted_child.op, "failover_stream");
        assert_eq!(adopted_child.id, SpanId::from_raw(3));
        assert_eq!(adopted_child.parent, Some(SpanId::from_raw(2)));
        assert_eq!(a.open_spans(), 0);
    }

    #[test]
    fn end_cycle_never_precedes_begin() {
        let mut t = Tracer::new(8);
        let s = t.begin_span(10, "probe", SpanCtx::default());
        t.end_span(4, s, "ok"); // clock misuse: clamped, not negative
        assert_eq!(t.span(s).unwrap().duration(), Some(0));
    }
}
