//! Derby's state-space transformation (paper §2, the method the authors
//! selected for PiCoGA).
//!
//! Plain M-level look-ahead puts the dense matrix `A^M` inside the feedback
//! loop, which caps the clock of any implementation. Derby (GLOBECOM 1996)
//! instead transforms the state through a nonsingular `T`:
//!
//! ```text
//! x(n) = T·x_t(n)
//! x_t(n+M) = (T⁻¹·A^M·T)·x_t(n) + (T⁻¹·B_M)·u_M(n)
//! ```
//!
//! With `T` chosen as the Krylov basis `[f, A^M·f, …, A^{(k−1)M}·f]`, the
//! transformed feedback `A_Mt = T⁻¹·A^M·T` is again a **companion matrix**
//! — minimal loop complexity — while the grown input network `B_Mt` sits
//! outside the loop and "can be fully pipelined", which is exactly what a
//! pipelined gate array wants.

use crate::lookahead::{BlockSystem, ParallelError};
use gf2::{BitMat, BitVec};
use lfsr::crc::{CrcSpec, RawCrcCore};
use lfsr::StateSpaceLfsr;

/// Complexity report for one seed-vector choice (the paper's §4 "we also
/// empirically analyzed the impact of the arbitrary vector f").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerbyComplexity {
    /// The seed vector that was used.
    pub f: BitVec,
    /// Ones in the transformed input matrix `B_Mt` (XOR-network size).
    pub b_mt_ones: usize,
    /// Ones in the anti-transform `T` (the second PiCoGA operation).
    pub t_ones: usize,
    /// Ones in the companion feedback column.
    pub feedback_ones: usize,
}

/// The transformed block system: companion feedback, pipelined input
/// network, and the anti-transform for reading results back.
#[derive(Debug, Clone)]
pub struct DerbyTransform {
    m: usize,
    t: BitMat,
    t_inv: BitMat,
    a_mt: BitMat,
    /// `T⁻¹·B_M`, columns in stream order (see `lookahead` module docs).
    b_mt: BitMat,
    /// `C_stack·T` for transducers.
    c_stack_t: BitMat,
    d_stack: BitMat,
    f: BitVec,
}

impl DerbyTransform {
    /// Builds the transform for `block`, choosing the seed vector `f`
    /// automatically: first the unit vectors (the paper settled on
    /// `f = [1 0 … 0]`), then pseudo-random candidates, until the Krylov
    /// matrix is nonsingular.
    ///
    /// # Errors
    ///
    /// [`ParallelError::SingularKrylov`] if no candidate works (the matrix
    /// `A^M` is derogatory enough that no single Krylov vector spans the
    /// space — possible for composite generators at unlucky M).
    pub fn new(block: &BlockSystem) -> Result<Self, ParallelError> {
        let k = block.dim();
        // Fail fast with an exact certificate: a companion similarity
        // exists iff A^M is cyclic (its minimal polynomial has degree k).
        if !block.a_m().is_cyclic() {
            return Err(ParallelError::SingularKrylov { tried: 0 });
        }
        let mut tried = 0;
        for i in 0..k {
            tried += 1;
            if let Some(d) = Self::with_seed(block, &BitVec::unit(i, k)) {
                return Ok(d);
            }
        }
        // Deterministic xorshift-style fallback candidates.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            tried += 1;
            let mut f = BitVec::zeros(k);
            for j in 0..k {
                if (x >> (j % 64)) & 1 == 1 {
                    f.set(j, true);
                }
            }
            if f.is_zero() {
                continue;
            }
            if let Some(d) = Self::with_seed(block, &f) {
                return Ok(d);
            }
        }
        Err(ParallelError::SingularKrylov { tried })
    }

    /// Attempts the transform with an explicit seed vector, returning
    /// `None` if the resulting Krylov matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if `f.len()` differs from the state dimension.
    pub fn with_seed(block: &BlockSystem, f: &BitVec) -> Option<Self> {
        let t = block.a_m().krylov(f);
        let t_inv = t.inverse()?;
        let a_mt = t_inv.mul(block.a_m()).mul(&t);
        debug_assert!(a_mt.is_companion(), "Krylov similarity must be companion");
        let b_mt = t_inv.mul(block.b_m());
        let c_stack_t = block.c_stack().mul(&t);
        Some(DerbyTransform {
            m: block.m(),
            t,
            t_inv,
            a_mt,
            b_mt,
            c_stack_t,
            d_stack: block.d_stack().clone(),
            f: f.clone(),
        })
    }

    /// Look-ahead factor M.
    pub fn m(&self) -> usize {
        self.m
    }

    /// State dimension k.
    pub fn dim(&self) -> usize {
        self.t.rows()
    }

    /// The seed vector that produced this transform.
    pub fn f(&self) -> &BitVec {
        &self.f
    }

    /// The transformation matrix `T` (also the anti-transform network
    /// `y = T·x_t`, the paper's second PiCoGA operation).
    pub fn t(&self) -> &BitMat {
        &self.t
    }

    /// `T⁻¹`, used once per message to transform the initial state.
    pub fn t_inv(&self) -> &BitMat {
        &self.t_inv
    }

    /// The companion feedback matrix `A_Mt`.
    pub fn a_mt(&self) -> &BitMat {
        &self.a_mt
    }

    /// The transformed input network `B_Mt` (stream order).
    pub fn b_mt(&self) -> &BitMat {
        &self.b_mt
    }

    /// The transformed stacked output matrix `C_stack·T`.
    pub fn c_stack_t(&self) -> &BitMat {
        &self.c_stack_t
    }

    /// The (untransformed) feed-through matrix.
    pub fn d_stack(&self) -> &BitMat {
        &self.d_stack
    }

    /// Complexity figures for this transform.
    pub fn complexity(&self) -> DerbyComplexity {
        let k = self.dim();
        DerbyComplexity {
            f: self.f.clone(),
            b_mt_ones: self.b_mt.count_ones(),
            t_ones: self.t.count_ones(),
            feedback_ones: self.a_mt.column(k - 1).count_ones(),
        }
    }

    /// A deterministic fingerprint of the transform: FNV-1a over `M`,
    /// the state dimension and the rows of `T`. Two transforms with the
    /// same digest interpret a transformed state identically, so a
    /// checkpoint stamped with this digest can be restored onto any lane
    /// whose transform matches — including a re-synthesized replacement
    /// placement, which changes the XOR network but not `T`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.m as u64);
        mix(self.dim() as u64);
        for r in 0..self.t.rows() {
            for &w in self.t.row(r).words() {
                mix(w);
            }
        }
        h
    }

    /// Marshals a transformed state from this transform's domain into
    /// `other`'s: anti-transform through this `T`, re-transform through
    /// the other `T⁻¹`. This is the migration path a checkpointed stream
    /// takes when it resumes on a lane built with a different transform
    /// (e.g. a replacement personality at a different look-ahead factor).
    ///
    /// # Panics
    ///
    /// Panics if the state dimensions disagree.
    pub fn marshal_state_to(&self, other: &DerbyTransform, x_t: &BitVec) -> BitVec {
        assert_eq!(
            self.dim(),
            other.dim(),
            "cannot marshal between transforms of different dimension"
        );
        other.transform_state(&self.anti_transform_state(x_t))
    }

    /// Maps a plain state into the transformed domain.
    pub fn transform_state(&self, x: &BitVec) -> BitVec {
        self.t_inv.mul_vec(x)
    }

    /// Maps a transformed state back to the plain domain (the
    /// anti-transform `x = T·x_t`).
    pub fn anti_transform_state(&self, x_t: &BitVec) -> BitVec {
        self.t.mul_vec(x_t)
    }

    /// One block step entirely in the transformed domain, returning the
    /// next transformed state and the block's output bits.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != M`.
    pub fn step_block(&self, x_t: &BitVec, block: &BitVec) -> (BitVec, BitVec) {
        assert_eq!(block.len(), self.m, "block must be exactly M bits");
        let mut next = self.a_mt.mul_vec(x_t);
        next.xor_assign(&self.b_mt.mul_vec(block));
        let mut y = self.c_stack_t.mul_vec(x_t);
        y.xor_assign(&self.d_stack.mul_vec(block));
        (next, y)
    }
}

/// A [`RawCrcCore`] implementing the paper's chosen CRC structure: block
/// steps with companion feedback in the transformed domain, anti-transform
/// at the end of the message, serial tail for non-multiple lengths.
#[derive(Debug, Clone)]
pub struct DerbyCore {
    derby: DerbyTransform,
    serial: StateSpaceLfsr,
}

impl DerbyCore {
    /// Builds the core for a CRC spec with look-ahead factor `m`.
    ///
    /// # Errors
    ///
    /// Propagates [`ParallelError`].
    pub fn new(spec: &CrcSpec, m: usize) -> Result<Self, ParallelError> {
        let serial = StateSpaceLfsr::crc(&spec.generator()).expect("valid catalogue generator");
        let block = BlockSystem::new(&serial, m)?;
        let derby = DerbyTransform::new(&block)?;
        Ok(DerbyCore { derby, serial })
    }

    /// The underlying transform.
    pub fn transform(&self) -> &DerbyTransform {
        &self.derby
    }
}

impl RawCrcCore for DerbyCore {
    fn width(&self) -> usize {
        self.serial.dim()
    }

    fn process(&mut self, state: &BitVec, bits: &BitVec) -> BitVec {
        let m = self.derby.m();
        let full = bits.len() / m;
        let mut x_t = self.derby.transform_state(state);
        for c in 0..full {
            let block = bits.slice(c * m, m);
            let (next, _) = self.derby.step_block(&x_t, &block);
            x_t = next;
        }
        let x = self.derby.anti_transform_state(&x_t);
        let tail_len = bits.len() - full * m;
        if tail_len == 0 {
            return x;
        }
        self.serial.set_state(x);
        self.serial.absorb(&bits.slice(full * m, tail_len));
        self.serial.state().clone()
    }

    fn block_bits(&self) -> usize {
        self.derby.m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookahead::check_against_serial;
    use lfsr::crc::{crc_bitwise, CrcEngine, CATALOG};

    #[test]
    fn transformed_feedback_is_companion_for_ethernet() {
        let spec = CrcSpec::crc32_ethernet();
        for m in [2usize, 8, 32, 64, 128] {
            let core = DerbyCore::new(spec, m).unwrap();
            assert!(core.transform().a_mt().is_companion(), "M={m}");
            // Similarity must hold: T·A_Mt = A^M·T.
            let d = core.transform();
            let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
            let a_m = sys.a().pow(m as u64);
            assert_eq!(d.t().mul(d.a_mt()), a_m.mul(d.t()), "M={m}");
        }
    }

    #[test]
    fn paper_default_seed_works_for_crc32() {
        // §4: "we selected f = [1 0 … 0]".
        let spec = CrcSpec::crc32_ethernet();
        let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
        for m in [32usize, 64, 128] {
            let block = BlockSystem::new(&sys, m).unwrap();
            let d = DerbyTransform::with_seed(&block, &BitVec::unit(0, 32));
            assert!(d.is_some(), "f = e0 should be nonsingular at M={m}");
        }
    }

    #[test]
    fn derby_crc_matches_bitwise() {
        let spec = CrcSpec::crc32_ethernet();
        let msg: Vec<u8> = (0u16..300).map(|i| (i * 31 + 7) as u8).collect();
        for m in [2usize, 8, 32, 64, 128] {
            let core = DerbyCore::new(spec, m).unwrap();
            let mut e = CrcEngine::new(*spec, core);
            for len in [0usize, 1, 4, 16, 46, 64, 123, 300] {
                assert_eq!(
                    e.checksum(&msg[..len]),
                    crc_bitwise(spec, &msg[..len]),
                    "M={m} len={len}"
                );
            }
        }
    }

    #[test]
    fn derby_works_across_catalogue() {
        let msg = b"derby state-space transformation";
        for spec in CATALOG.iter().filter(|s| s.width <= 32) {
            match DerbyCore::new(spec, 16) {
                Ok(mut core) => check_against_serial(spec, &mut core, msg).unwrap(),
                Err(ParallelError::SingularKrylov { .. }) => {
                    // Acceptable for composite generators at this M; the
                    // flow falls back to plain look-ahead in that case.
                }
                Err(e) => panic!("{}: {e}", spec.name),
            }
        }
    }

    #[test]
    fn anti_transform_roundtrip() {
        let spec = CrcSpec::crc32_ethernet();
        let core = DerbyCore::new(spec, 64).unwrap();
        let d = core.transform();
        let x = BitVec::from_u64(0xDEADBEEF, 32);
        assert_eq!(d.anti_transform_state(&d.transform_state(&x)), x);
    }

    #[test]
    fn digest_distinguishes_transforms_and_survives_resynthesis() {
        let spec = CrcSpec::crc32_ethernet();
        let a = DerbyCore::new(spec, 32).unwrap();
        let b = DerbyCore::new(spec, 32).unwrap();
        let c = DerbyCore::new(spec, 64).unwrap();
        // Same spec + M ⇒ same T ⇒ same digest (re-synthesis changes the
        // XOR mapping, never the transform).
        assert_eq!(a.transform().digest(), b.transform().digest());
        assert_ne!(a.transform().digest(), c.transform().digest());
    }

    #[test]
    fn marshal_state_crosses_transform_boundaries() {
        let spec = CrcSpec::crc32_ethernet();
        let a = DerbyCore::new(spec, 32).unwrap();
        let b = DerbyCore::new(spec, 64).unwrap();
        let plain = BitVec::from_u64(0xFEED_BEEF, 32);
        let x_ta = a.transform().transform_state(&plain);
        let x_tb = a.transform().marshal_state_to(b.transform(), &x_ta);
        // The marshalled state means the same plain state under b's T.
        assert_eq!(b.transform().anti_transform_state(&x_tb), plain);
    }

    #[test]
    fn complexity_reports_are_consistent() {
        let spec = CrcSpec::crc32_ethernet();
        let core = DerbyCore::new(spec, 32).unwrap();
        let c = core.transform().complexity();
        assert!(c.b_mt_ones > 0 && c.t_ones >= 32);
        // The companion feedback column must be dramatically sparser than
        // the dense A^M the plain look-ahead would have in its loop.
        let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
        let dense = sys.a().pow(32).count_ones();
        assert!(
            c.feedback_ones + 32 < dense,
            "companion loop ({} ones + shifts) should beat dense A^M ({dense} ones)",
            c.feedback_ones
        );
    }

    #[test]
    fn scrambler_outputs_survive_the_transform() {
        use lfsr::scramble::{AdditiveScrambler, ScramblerSpec};
        let sspec = ScramblerSpec::ieee80211();
        let mut serial = AdditiveScrambler::new(sspec).unwrap();
        let data = BitVec::from_u128(0xFEDC_BA98_7654_3210_0F1E_2D3C, 96);
        let expected = serial.scramble(&data);

        let base = AdditiveScrambler::new(sspec).unwrap();
        let block = BlockSystem::new(base.system(), 32).unwrap();
        let derby = DerbyTransform::new(&block).unwrap();
        let mut x_t = derby.transform_state(base.system().state());
        let mut out = BitVec::zeros(0);
        for c in 0..3 {
            let (next, y) = derby.step_block(&x_t, &data.slice(c * 32, 32));
            x_t = next;
            out = out.concat(&y);
        }
        assert_eq!(out, expected);
    }
}
