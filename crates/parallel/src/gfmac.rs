//! Galois-field multiply-accumulate (GFMAC) parallel CRC (paper §2,
//! after Roy \[9\] and Ji & Killian \[10\]).
//!
//! For an N-bit message `A(x)` and M-bit chunks `Wᵢ`:
//!
//! ```text
//! CRC[A(x)] = (A(x)·x^k) mod G(x) = Σᵢ Wᵢ·βᵢ  (mod G)
//! ```
//!
//! where the `βᵢ = x^{M·(n−1−i)+k} mod G` are "N/M constants dependent on
//! the message length N and the polynomial generator G(x)". Each product is
//! one sub-word GF multiply-accumulate, so a processor with P GFMAC units
//! computes a CRC in roughly `⌈n/P⌉` MAC cycles plus a reduction — the
//! custom-processor comparison point of the paper's §5 ("2-3 cycles … for a
//! 128 bit message … featuring 16 GFMAC running at 200 MHz").

use gf2::{BitVec, Gf2Poly};
use lfsr::crc::{CrcSpec, RawCrcCore};

/// Fixed-parameter GFMAC CRC evaluator with a β-constant cache.
///
/// The β table depends on the message length; [`GfmacCore`] recomputes it
/// lazily whenever a new length is seen (real deployments fix the frame
/// length, e.g. one Ethernet MTU, and burn the table into ROM).
#[derive(Debug, Clone)]
pub struct GfmacCore {
    g: Gf2Poly,
    width: usize,
    m: usize,
    /// (message bit-length, β constants) of the last message shape seen.
    cache: Option<(usize, Vec<Gf2Poly>)>,
}

impl GfmacCore {
    /// Builds a GFMAC core for `spec` with chunk size `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(spec: &CrcSpec, m: usize) -> Self {
        assert!(m > 0, "chunk size must be >= 1");
        GfmacCore {
            g: spec.generator(),
            width: spec.width,
            m,
            cache: None,
        }
    }

    /// Chunk size M in bits.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The β constants for an `n_bits`-long message (full chunks only; a
    /// tail shorter than M is handled as a final smaller chunk with its own
    /// shift).
    fn betas(&mut self, n_bits: usize) -> &[Gf2Poly] {
        let need_recompute = self.cache.as_ref().map(|(l, _)| *l) != Some(n_bits);
        if need_recompute {
            let full = n_bits / self.m;
            let tail = n_bits % self.m;
            let mut betas = Vec::with_capacity(full + 1);
            for c in 0..full {
                // Chunk c's last bit sits x^{tail + M·(full-1-c)} above the
                // message end; the whole chunk is then lifted by x^k.
                let e = (tail + self.m * (full - 1 - c) + self.width) as u64;
                betas.push(Gf2Poly::x_pow_mod(e, &self.g));
            }
            if tail > 0 {
                betas.push(Gf2Poly::x_pow_mod(self.width as u64, &self.g));
            }
            self.cache = Some((n_bits, betas));
        }
        &self.cache.as_ref().expect("just filled").1
    }
}

/// Converts a stream-order chunk (first-fed bit at index 0) into its
/// polynomial: the first-fed bit is the most significant.
fn chunk_poly(bits: &BitVec, start: usize, len: usize) -> Gf2Poly {
    let mut p = Gf2Poly::zero();
    for j in 0..len {
        if bits.get(start + j) {
            p.set_coeff(len - 1 - j, true);
        }
    }
    p
}

impl RawCrcCore for GfmacCore {
    fn width(&self) -> usize {
        self.width
    }

    fn process(&mut self, state: &BitVec, bits: &BitVec) -> BitVec {
        let n = bits.len();
        let m = self.m;
        let g = self.g.clone();
        // Initial register contributes state(x)·x^N mod G by linearity.
        let state_poly = Gf2Poly::from_bitvec(state);
        let mut acc = state_poly.mul(&Gf2Poly::x_pow_mod(n as u64, &g)).rem(&g);
        let full = n / m;
        let tail = n % m;
        let betas = self.betas(n).to_vec();
        for (c, beta) in betas.iter().enumerate().take(full) {
            let w = chunk_poly(bits, c * m, m);
            acc = acc.add(&w.mul(beta).rem(&g));
        }
        if tail > 0 {
            let w = chunk_poly(bits, full * m, tail);
            acc = acc.add(&w.mul(&betas[full]).rem(&g));
        }
        acc.to_bitvec().resized(self.width)
    }

    fn block_bits(&self) -> usize {
        self.m
    }
}

/// Cycle-count model of a customizable processor with `units` parallel
/// GFMAC datapaths (the \[10\] comparison point of §5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GfmacProcessorModel {
    /// Number of parallel GFMAC units.
    pub units: usize,
    /// Sub-word width of each GFMAC (the chunk size M).
    pub m: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
}

impl GfmacProcessorModel {
    /// The paper's reference configuration: 16 GFMACs at 200 MHz.
    pub fn reference() -> Self {
        GfmacProcessorModel {
            units: 16,
            m: 8,
            clock_hz: 200e6,
        }
    }

    /// MAC + reduction cycles for an `n_bits` message: `⌈n/(units·M)⌉`
    /// parallel MAC cycles plus a wide-XOR reduction and the final fold.
    pub fn cycles(&self, n_bits: usize) -> u64 {
        let chunks = n_bits.div_ceil(self.m).max(1);
        let mac = chunks.div_ceil(self.units) as u64;
        mac + 2
    }

    /// Sustained throughput in bits per second for `n_bits` messages.
    pub fn throughput_bps(&self, n_bits: usize) -> f64 {
        n_bits as f64 * self.clock_hz / self.cycles(n_bits) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookahead::check_against_serial;
    use lfsr::crc::{crc_bitwise, CrcEngine, CATALOG};

    #[test]
    fn gfmac_matches_bitwise_for_ethernet() {
        let spec = CrcSpec::crc32_ethernet();
        let msg: Vec<u8> = (0u16..200)
            .map(|i| (i.wrapping_mul(193) >> 3) as u8)
            .collect();
        for m in [4usize, 8, 32, 128] {
            let core = GfmacCore::new(spec, m);
            let mut e = CrcEngine::new(*spec, core);
            for len in [0usize, 1, 7, 16, 17, 64, 200] {
                assert_eq!(
                    e.checksum(&msg[..len]),
                    crc_bitwise(spec, &msg[..len]),
                    "M={m} len={len}"
                );
            }
        }
    }

    #[test]
    fn gfmac_works_across_catalogue() {
        let msg = b"sub-word parallel galois field multiply accumulate";
        for spec in CATALOG.iter().filter(|s| s.width <= 64) {
            let mut core = GfmacCore::new(spec, 8);
            check_against_serial(spec, &mut core, msg).unwrap();
        }
    }

    #[test]
    fn beta_cache_recomputes_on_length_change() {
        let spec = CrcSpec::crc32_ethernet();
        let core = GfmacCore::new(spec, 32);
        let mut e = CrcEngine::new(*spec, core);
        // Two different lengths through the same core must both be right.
        assert_eq!(e.checksum(b"123456789"), 0xCBF43926);
        assert_eq!(e.checksum(b"12345678"), crc_bitwise(spec, b"12345678"));
        assert_eq!(e.checksum(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn processor_model_reproduces_paper_claim() {
        // "2-3 cycles are required to compute the CRC for 128 bit message
        // in a custom processor featuring 16 GFMAC running at 200MHz."
        let p = GfmacProcessorModel::reference();
        let c = p.cycles(128);
        assert!((2..=3).contains(&c), "got {c} cycles");
    }

    #[test]
    fn processor_throughput_scales_with_length() {
        let p = GfmacProcessorModel::reference();
        assert!(p.throughput_bps(12_144) > p.throughput_bps(128));
    }
}
