//! Message interleaving (paper §5 / Fig. 5, after Kong & Parhi \[13\]).
//!
//! "Message interleaving allows working concurrently on multiple messages
//! reducing the impact of any configuration change": instead of finishing
//! one message (state update → context switch → anti-transform → switch
//! back), K messages are processed round-robin so that the two PiCoGA
//! configurations each run long bursts.
//!
//! This module provides the *functional* layer: per-message state tracking
//! over a shared [`DerbyTransform`], plus the round-robin block schedule.
//! The cycle-accounting lives in the `dream` crate.

use crate::derby::DerbyTransform;
use gf2::BitVec;

/// One entry of a round-robin schedule: which message contributes the next
/// M-bit block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleSlot {
    /// Message index.
    pub msg: usize,
    /// Block index within that message.
    pub block: usize,
}

/// Builds the round-robin schedule for messages of `blocks_per_msg[i]`
/// blocks each: cycle over all messages still having blocks left.
pub fn round_robin_schedule(blocks_per_msg: &[usize]) -> Vec<ScheduleSlot> {
    let total: usize = blocks_per_msg.iter().sum();
    let mut emitted = vec![0usize; blocks_per_msg.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        for (msg, &n) in blocks_per_msg.iter().enumerate() {
            if emitted[msg] < n {
                out.push(ScheduleSlot {
                    msg,
                    block: emitted[msg],
                });
                emitted[msg] += 1;
            }
        }
    }
    out
}

/// K concurrent CRC computations over one shared transformed datapath.
///
/// Each message carries its own transformed state; blocks may arrive in any
/// interleaving. `finalize` applies the anti-transform for one message
/// without disturbing the others — the hardware analogue is that only the
/// *configuration* is shared, not the state registers (which live in the
/// DREAM memory subsystem between bursts).
#[derive(Debug, Clone)]
pub struct InterleavedCrc {
    derby: DerbyTransform,
    states: Vec<BitVec>,
}

impl InterleavedCrc {
    /// Starts `k` messages, all from `init` (the spec's raw init register).
    pub fn new(derby: DerbyTransform, k: usize, init: &BitVec) -> Self {
        let x0 = derby.transform_state(init);
        InterleavedCrc {
            derby,
            states: vec![x0; k],
        }
    }

    /// Number of concurrent messages.
    pub fn lanes(&self) -> usize {
        self.states.len()
    }

    /// Borrows the shared transform.
    pub fn transform(&self) -> &DerbyTransform {
        &self.derby
    }

    /// Feeds one M-bit block of message `msg`.
    ///
    /// # Panics
    ///
    /// Panics if `msg` is out of range or the block is not M bits.
    pub fn feed_block(&mut self, msg: usize, block: &BitVec) {
        let (next, _) = self.derby.step_block(&self.states[msg], block);
        self.states[msg] = next;
    }

    /// Anti-transforms message `msg`'s state into the plain register
    /// domain (the second PiCoGA operation).
    pub fn finalize(&self, msg: usize) -> BitVec {
        self.derby.anti_transform_state(&self.states[msg])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derby::DerbyCore;
    use crate::lookahead::BlockSystem;
    use lfsr::crc::{CrcSpec, RawCrcCore, SerialCore};
    use lfsr::StateSpaceLfsr;

    #[test]
    fn schedule_covers_everything_in_order() {
        let s = round_robin_schedule(&[3, 1, 2]);
        assert_eq!(s.len(), 6);
        // Per-message block indices must appear in increasing order.
        for msg in 0..3 {
            let blocks: Vec<usize> = s.iter().filter(|e| e.msg == msg).map(|e| e.block).collect();
            let sorted: Vec<usize> = (0..blocks.len()).collect();
            assert_eq!(blocks, sorted, "msg {msg}");
        }
        // First round touches every message once.
        assert_eq!(s[0], ScheduleSlot { msg: 0, block: 0 });
        assert_eq!(s[1], ScheduleSlot { msg: 1, block: 0 });
        assert_eq!(s[2], ScheduleSlot { msg: 2, block: 0 });
    }

    #[test]
    fn schedule_of_empty_is_empty() {
        assert!(round_robin_schedule(&[]).is_empty());
        assert!(round_robin_schedule(&[0, 0]).is_empty());
    }

    #[test]
    fn interleaved_crcs_match_independent_processing() {
        let spec = CrcSpec::crc32_ethernet();
        let m = 32;
        let derby = DerbyCore::new(spec, m).unwrap().transform().clone();
        let init = BitVec::from_u64(spec.init, 32);

        // Three messages of different block counts.
        let mk_msg = |seed: u64, blocks: usize| {
            let mut v = BitVec::zeros(blocks * m);
            let mut x = seed;
            for i in 0..v.len() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x >> 63 == 1 {
                    v.set(i, true);
                }
            }
            v
        };
        let msgs = [mk_msg(1, 4), mk_msg(2, 7), mk_msg(3, 2)];

        let mut il = InterleavedCrc::new(derby, 3, &init);
        let schedule = round_robin_schedule(&[4, 7, 2]);
        for slot in schedule {
            il.feed_block(slot.msg, &msgs[slot.msg].slice(slot.block * m, m));
        }

        for (i, msg) in msgs.iter().enumerate() {
            let mut serial = SerialCore::new(spec);
            let expected = serial.process(&init, msg);
            assert_eq!(il.finalize(i), expected, "message {i}");
        }
    }

    #[test]
    fn lanes_are_isolated() {
        let spec = CrcSpec::by_name("CRC-16/XMODEM").unwrap();
        let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
        let block = BlockSystem::new(&sys, 16).unwrap();
        let derby = crate::derby::DerbyTransform::new(&block).unwrap();
        let init = BitVec::zeros(16);
        let mut il = InterleavedCrc::new(derby, 2, &init);
        let b = BitVec::from_u64(0xABCD, 16);
        il.feed_block(0, &b);
        // Lane 1 untouched: still the transformed init state.
        assert_eq!(il.finalize(1), init);
        assert_ne!(il.finalize(0), init);
    }
}
