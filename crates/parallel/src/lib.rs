//! # lfsr-parallel — parallelisation methods for LFSR applications
//!
//! The four method families surveyed in §2 of the DATE 2008 paper:
//!
//! * [`lookahead`] — M-level look-ahead (Pei & Zukowski): `A^M` feedback,
//!   `B_M` input network; fast but the dense loop caps the clock.
//! * [`derby`] — Derby's state-space transformation: similarity transform
//!   to a **companion** feedback with a fully pipelinable input network;
//!   the method the paper maps onto PiCoGA.
//! * [`gfmac`] — sub-word Galois-field MAC chunking (Roy, Ji & Killian):
//!   `CRC = Σ Wᵢ·βᵢ mod G`, the software/custom-processor alternative.
//! * [`interleave`] — message interleaving (Kong & Parhi) to hide
//!   configuration switches across concurrent messages.
//!
//! Every engine implements [`lfsr::crc::RawCrcCore`], so all of them are
//! interchangeable under [`lfsr::crc::CrcEngine`] and are cross-validated
//! against the serial reference and against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod derby;
pub mod gfmac;
pub mod interleave;
pub mod lookahead;

pub use derby::{DerbyComplexity, DerbyCore, DerbyTransform};
pub use gfmac::{GfmacCore, GfmacProcessorModel};
pub use interleave::{round_robin_schedule, InterleavedCrc, ScheduleSlot};
pub use lookahead::{check_against_serial, BlockSystem, LookaheadCore, ParallelError};
