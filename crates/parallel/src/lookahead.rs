//! M-level look-ahead parallelisation (paper §2, after Pei & Zukowski).
//!
//! Applying the state recurrence M times collapses M serial steps into one
//! block step:
//!
//! ```text
//! x(n+M) = A^M·x(n) + B_M·u_M(n)        B_M = [b  A·b  A²·b … A^{M−1}·b]
//! ```
//!
//! and, for transducers (scramblers), all M output bits of the block are
//! produced at once by stacking `y(n+i) = C·A^i·x(n) + …` rows.
//!
//! **Ordering convention.** The paper's `u_M(n)` lists the *latest* bit
//! first. Throughout this workspace blocks are kept in **stream order**
//! (bit fed first = index 0), so the stored input matrix is the paper's
//! `B_M` with its columns reversed. [`BlockSystem::paper_b_m`] recovers the
//! paper's layout for inspection.

use gf2::{BitMat, BitVec};
use lfsr::crc::{CrcSpec, RawCrcCore, SerialCore};
use lfsr::StateSpaceLfsr;
use std::fmt;

/// Errors from building a block system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// The look-ahead factor must be at least 1.
    ZeroLookahead,
    /// Derby's transform failed to find a nonsingular Krylov basis.
    SingularKrylov {
        /// How many seed vectors were tried.
        tried: usize,
    },
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::ZeroLookahead => write!(f, "look-ahead factor must be >= 1"),
            ParallelError::SingularKrylov { tried } => write!(
                f,
                "no seed vector yielded a nonsingular Krylov transform ({tried} tried)"
            ),
        }
    }
}

impl std::error::Error for ParallelError {}

/// The M-bit-per-step block form of a [`StateSpaceLfsr`] (the paper's
/// Fig. 2 "generic scheme for an M-bit LFSR-based application").
#[derive(Debug, Clone)]
pub struct BlockSystem {
    m: usize,
    out_dim: usize,
    a_m: BitMat,
    /// k×M input→state matrix, columns in stream order.
    b_m: BitMat,
    /// (out_dim·M)×k state→outputs matrix; rows grouped per time step.
    c_stack: BitMat,
    /// (out_dim·M)×M input→outputs matrix (lower block triangular).
    d_stack: BitMat,
}

impl BlockSystem {
    /// Builds the M-level look-ahead of `sys`.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::ZeroLookahead`] if `m == 0`.
    pub fn new(sys: &StateSpaceLfsr, m: usize) -> Result<Self, ParallelError> {
        if m == 0 {
            return Err(ParallelError::ZeroLookahead);
        }
        let k = sys.dim();
        let out = sys.out_dim();

        // Powers A^0 .. A^M.
        let mut powers = Vec::with_capacity(m + 1);
        powers.push(BitMat::identity(k));
        for _ in 0..m {
            let next = powers.last().expect("nonempty").mul(sys.a());
            powers.push(next);
        }

        // Impulse responses w_j = A^j·b, shared by B_M and D_stack.
        let w: Vec<BitVec> = (0..m).map(|j| powers[j].mul_vec(sys.b())).collect();

        // b_m column j (stream order: bit j is fed j-th, i.e. u(n+j))
        // carries weight A^{M-1-j}·b.
        let b_cols: Vec<BitVec> = (0..m).map(|j| w[m - 1 - j].clone()).collect();
        let b_m = BitMat::from_columns(&b_cols);

        // Output stack: y(n+i) = C·A^i·x(n) + Σ_{j<i} C·A^{i−1−j}·b·u(n+j)
        //                        + d·u(n+i).
        // Precompute the Markov parameters c_r·w_j once (O(out·m) dots)
        // instead of re-deriving them per (i, j) pair.
        let markov: Vec<BitVec> = (0..out)
            .map(|r| BitVec::from_bits((0..m).map(|j| sys.c().row(r).dot(&w[j]))))
            .collect();
        let mut c_rows = Vec::with_capacity(out * m);
        let mut d_rows = Vec::with_capacity(out * m);
        for (i, power) in powers.iter().enumerate().take(m) {
            let c_ai = sys.c().mul(power);
            for (r, mk) in markov.iter().enumerate() {
                c_rows.push(c_ai.row(r).clone());
                let mut d_row = BitVec::zeros(m);
                for j in 0..i {
                    if mk.get(i - 1 - j) {
                        d_row.flip(j);
                    }
                }
                if sys.d().get(r) {
                    d_row.flip(i);
                }
                d_rows.push(d_row);
            }
        }

        Ok(BlockSystem {
            m,
            out_dim: out,
            a_m: powers.pop().expect("powers nonempty"),
            b_m,
            c_stack: BitMat::from_rows(c_rows),
            d_stack: BitMat::from_rows(d_rows),
        })
    }

    /// The look-ahead factor M.
    pub fn m(&self) -> usize {
        self.m
    }

    /// State dimension k.
    pub fn dim(&self) -> usize {
        self.a_m.rows()
    }

    /// Outputs per serial step.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The feedback matrix `A^M`.
    pub fn a_m(&self) -> &BitMat {
        &self.a_m
    }

    /// The input matrix in stream order (see module docs).
    pub fn b_m(&self) -> &BitMat {
        &self.b_m
    }

    /// The input matrix in the paper's order (`[b A·b … A^{M−1}·b]`,
    /// latest bit first).
    pub fn paper_b_m(&self) -> BitMat {
        let cols: Vec<BitVec> = (0..self.m).rev().map(|j| self.b_m.column(j)).collect();
        BitMat::from_columns(&cols)
    }

    /// The stacked output matrix.
    pub fn c_stack(&self) -> &BitMat {
        &self.c_stack
    }

    /// The stacked feed-through matrix.
    pub fn d_stack(&self) -> &BitMat {
        &self.d_stack
    }

    /// Performs one block step: consumes `block` (exactly M bits, stream
    /// order), returns the next state and the `out_dim·M` output bits.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn step_block(&self, state: &BitVec, block: &BitVec) -> (BitVec, BitVec) {
        assert_eq!(block.len(), self.m, "block must be exactly M bits");
        let mut next = self.a_m.mul_vec(state);
        next.xor_assign(&self.b_m.mul_vec(block));
        let mut y = self.c_stack.mul_vec(state);
        y.xor_assign(&self.d_stack.mul_vec(block));
        (next, y)
    }

    /// Performs one block step computing only the next state (skips the
    /// stacked output networks — the CRC usage pattern, where `y` is
    /// needed once per message, not per block).
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != M`.
    pub fn step_block_state_only(&self, state: &BitVec, block: &BitVec) -> BitVec {
        assert_eq!(block.len(), self.m, "block must be exactly M bits");
        let mut next = self.a_m.mul_vec(state);
        next.xor_assign(&self.b_m.mul_vec(block));
        next
    }

    /// Runs a whole bit stream for state only (no outputs collected):
    /// full M-blocks through [`BlockSystem::step_block_state_only`], the
    /// tail serially through `tail_sys`.
    pub fn run_state_only(
        &self,
        tail_sys: &mut StateSpaceLfsr,
        state: &BitVec,
        bits: &BitVec,
    ) -> BitVec {
        let full = bits.len() / self.m;
        let mut state = state.clone();
        for c in 0..full {
            let block = bits.slice(c * self.m, self.m);
            state = self.step_block_state_only(&state, &block);
        }
        let tail = bits.slice(full * self.m, bits.len() - full * self.m);
        tail_sys.set_state(state);
        tail_sys.absorb(&tail);
        tail_sys.state().clone()
    }

    /// Runs a whole bit stream: full M-blocks through the block form, the
    /// tail serially through `tail_sys` (which must be the originating
    /// serial system). Returns the final state and all outputs.
    pub fn run(
        &self,
        tail_sys: &mut StateSpaceLfsr,
        state: &BitVec,
        bits: &BitVec,
    ) -> (BitVec, BitVec) {
        let full = bits.len() / self.m;
        let mut state = state.clone();
        let mut outputs = BitVec::zeros(0);
        for c in 0..full {
            let block = bits.slice(c * self.m, self.m);
            let (next, y) = self.step_block(&state, &block);
            state = next;
            outputs = outputs.concat(&y);
        }
        let tail = bits.slice(full * self.m, bits.len() - full * self.m);
        tail_sys.set_state(state);
        let y_tail = if self.out_dim == 1 {
            tail_sys.transduce(&tail)
        } else {
            tail_sys.absorb(&tail);
            BitVec::zeros(0)
        };
        (tail_sys.state().clone(), outputs.concat(&y_tail))
    }
}

/// A [`RawCrcCore`] that advances M bits per block step using plain
/// look-ahead (Pei-style: the full `A^M` sits in the feedback loop).
#[derive(Debug, Clone)]
pub struct LookaheadCore {
    block: BlockSystem,
    serial: StateSpaceLfsr,
}

impl LookaheadCore {
    /// Builds the core for a CRC spec with look-ahead factor `m`.
    ///
    /// # Errors
    ///
    /// Propagates [`ParallelError`].
    pub fn new(spec: &CrcSpec, m: usize) -> Result<Self, ParallelError> {
        let serial = StateSpaceLfsr::crc(&spec.generator()).expect("valid catalogue generator");
        let block = BlockSystem::new(&serial, m)?;
        Ok(LookaheadCore { block, serial })
    }

    /// The underlying block system.
    pub fn block_system(&self) -> &BlockSystem {
        &self.block
    }
}

impl RawCrcCore for LookaheadCore {
    fn width(&self) -> usize {
        self.serial.dim()
    }

    fn process(&mut self, state: &BitVec, bits: &BitVec) -> BitVec {
        self.block.run_state_only(&mut self.serial, state, bits)
    }

    fn block_bits(&self) -> usize {
        self.block.m()
    }
}

/// Convenience: check a core against the serial reference on one message.
///
/// Returns `Err` with a description on the first mismatch — used by tests
/// and by the flow's self-check stage.
pub fn check_against_serial<C: RawCrcCore>(
    spec: &CrcSpec,
    core: &mut C,
    data: &[u8],
) -> Result<(), String> {
    use lfsr::crc::CrcEngine;
    let mut reference = CrcEngine::new(*spec, SerialCore::new(spec));
    let expected = reference.checksum(data);
    let bits = lfsr::crc::message_bits(spec, data);
    let init = BitVec::from_u64(spec.init & spec.mask(), spec.width);
    let fin = core.process(&init, &bits);
    let mut out = fin.to_u64();
    if spec.refout {
        out = lfsr::crc::reflect(out, spec.width);
    }
    let out = (out ^ spec.xorout) & spec.mask();
    if out == expected {
        Ok(())
    } else {
        Err(format!(
            "{}: core produced 0x{out:X}, serial reference 0x{expected:X} on {} bytes",
            spec.name,
            data.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfsr::crc::{crc_bitwise, CrcEngine};
    use lfsr::scramble::{AdditiveScrambler, ScramblerSpec};

    #[test]
    fn block_system_rejects_m_zero() {
        let sys = StateSpaceLfsr::crc(&CrcSpec::crc32_ethernet().generator()).unwrap();
        assert_eq!(
            BlockSystem::new(&sys, 0).unwrap_err(),
            ParallelError::ZeroLookahead
        );
    }

    #[test]
    fn lookahead_crc_matches_bitwise_for_many_m() {
        let spec = CrcSpec::crc32_ethernet();
        let msg: Vec<u8> = (0u16..193).map(|i| (i * 7 + 3) as u8).collect();
        for m in [1, 2, 3, 7, 8, 16, 24, 32, 64, 128] {
            let core = LookaheadCore::new(spec, m).unwrap();
            let mut e = CrcEngine::new(*spec, core);
            for len in [0usize, 1, 15, 16, 17, 64, 193] {
                assert_eq!(
                    e.checksum(&msg[..len]),
                    crc_bitwise(spec, &msg[..len]),
                    "M={m} len={len}"
                );
            }
        }
    }

    #[test]
    fn lookahead_works_across_catalogue() {
        let msg = b"generic lfsr parallelisation";
        for spec in lfsr::crc::CATALOG.iter().filter(|s| s.width <= 32) {
            let mut core = LookaheadCore::new(spec, 24).unwrap();
            check_against_serial(spec, &mut core, msg).unwrap();
        }
    }

    #[test]
    fn scrambler_block_outputs_match_serial() {
        let sspec = ScramblerSpec::ieee80211();
        let mut serial = AdditiveScrambler::new(sspec).unwrap();
        let data = BitVec::from_u128(0x0123_4567_89AB_CDEF_0011_2233, 100);
        let expected = serial.scramble(&data);

        for m in [4usize, 16, 50, 128] {
            let base = AdditiveScrambler::new(sspec).unwrap();
            let block = BlockSystem::new(base.system(), m).unwrap();
            let mut tail = base.system().clone();
            let (_, outputs) = block.run(&mut tail, base.system().state(), &data);
            assert_eq!(outputs, expected, "M={m}");
        }
    }

    #[test]
    fn paper_b_m_is_column_reversed() {
        let sys =
            StateSpaceLfsr::crc(&CrcSpec::by_name("CRC-16/XMODEM").unwrap().generator()).unwrap();
        let bs = BlockSystem::new(&sys, 8).unwrap();
        let paper = bs.paper_b_m();
        // Paper's column 0 is b itself (weight of the latest bit).
        assert_eq!(paper.column(0), sys.b().clone());
        // Stream order: the first-fed bit has the highest weight A^{M-1}·b.
        assert_eq!(bs.b_m().column(0), sys.a().pow(7).mul_vec(sys.b()));
    }

    #[test]
    fn a_m_equals_pow() {
        let sys = StateSpaceLfsr::crc(&CrcSpec::crc32_ethernet().generator()).unwrap();
        let bs = BlockSystem::new(&sys, 32).unwrap();
        assert_eq!(*bs.a_m(), sys.a().pow(32));
    }

    #[test]
    fn block_step_linearity() {
        // step(state, block) + step(0, 0) == step over XORed arguments.
        let sys =
            StateSpaceLfsr::crc(&CrcSpec::by_name("CRC-8/SMBUS").unwrap().generator()).unwrap();
        let bs = BlockSystem::new(&sys, 16).unwrap();
        let s1 = BitVec::from_u64(0xA5, 8);
        let s2 = BitVec::from_u64(0x3C, 8);
        let b1 = BitVec::from_u64(0xDEAD, 16);
        let b2 = BitVec::from_u64(0xBEEF, 16);
        let (n1, _) = bs.step_block(&s1, &b1);
        let (n2, _) = bs.step_block(&s2, &b2);
        let (nx, _) = bs.step_block(&(&s1 ^ &s2), &(&b1 ^ &b2));
        assert_eq!(nx, &n1 ^ &n2);
    }
}

#[cfg(test)]
mod multiplicative_tests {
    use super::*;
    use gf2::Gf2Poly;

    /// The multiplicative (self-sync) scrambler exercises the one part of
    /// the block machinery nothing else does: a system with BOTH `b ≠ 0`
    /// and per-step outputs, so the full lower-triangular `D_stack`
    /// convolution carries input-to-output paths within one block.
    #[test]
    fn multiplicative_scrambler_block_form_matches_serial() {
        // 64B/66B PCS polynomial x^58 + x^39 + 1.
        let mut s_poly = Gf2Poly::x_pow(58);
        s_poly.set_coeff(39, true);
        s_poly.set_coeff(0, true);

        let data = {
            let mut v = BitVec::zeros(660);
            let mut x = 0xACE1u64;
            for i in 0..v.len() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x & 1 == 1 {
                    v.set(i, true);
                }
            }
            v
        };
        let seed = BitVec::from_u64(0x3FF_FFFF_FFFF, 58);

        let mut serial = StateSpaceLfsr::multiplicative_scrambler(&s_poly).unwrap();
        serial.set_state(seed.clone());
        let expected = serial.transduce(&data);

        for m in [6usize, 33, 66, 128] {
            let base = StateSpaceLfsr::multiplicative_scrambler(&s_poly).unwrap();
            let bs = BlockSystem::new(&base, m).unwrap();
            let mut tail = base.clone();
            let (_, out) = bs.run(&mut tail, &seed, &data);
            assert_eq!(out, expected, "M={m}");
        }
    }

    /// ...and Derby's transform applies to it too: the feedback
    /// `A = shift + e0·t` is companion-like but not companion; `A^M` is
    /// (usually) cyclic, so the transformed loop collapses again.
    #[test]
    fn multiplicative_scrambler_derby_form_matches_serial() {
        use crate::derby::DerbyTransform;
        let mut s_poly = Gf2Poly::x_pow(58);
        s_poly.set_coeff(39, true);
        s_poly.set_coeff(0, true);

        let m = 66;
        let base = StateSpaceLfsr::multiplicative_scrambler(&s_poly).unwrap();
        let bs = BlockSystem::new(&base, m).unwrap();
        let derby = DerbyTransform::new(&bs).expect("cyclic at M=66");
        assert!(derby.a_mt().is_companion());

        let data = BitVec::from_u128(0x0123_4567_89AB_CDEF_0011_2233_4455_6677, 128)
            .concat(&BitVec::from_u64(0xFFFF, 4));
        let seed = BitVec::from_u64(0x1234_5678, 58);

        let mut serial = base.clone();
        serial.set_state(seed.clone());
        let expected = serial.transduce(&data.slice(0, 132));

        let mut x_t = derby.transform_state(&seed);
        let mut out = BitVec::zeros(0);
        for c in 0..2 {
            let (next, y) = derby.step_block(&x_t, &data.slice(c * m, m));
            x_t = next;
            out = out.concat(&y);
        }
        assert_eq!(out, expected);
    }
}
