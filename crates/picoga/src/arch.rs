//! PiCoGA architecture parameters.
//!
//! Numbers follow the paper (§3) and the DREAM publications it cites: a
//! pipelined matrix of mixed-grain logic cells, each with a 4-bit ALU
//! (with Galois-field facilities) and a 64-bit LUT, 2-bit-granularity
//! routing, one **row per pipeline stage** under a programmable pipeline
//! control unit, a 4-context configuration cache exchangeable in 2 clock
//! cycles, and a fixed 200 MHz clock in ST 90 nm (≈11 mm²).

use std::fmt;

/// Fabric parameters. [`PicogaParams::dream`] gives the DREAM instance;
/// everything is a plain field so the design-space explorer can vary it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PicogaParams {
    /// Number of rows (pipeline stages available).
    pub rows: usize,
    /// Logic cells per row.
    pub cells_per_row: usize,
    /// Cells per row actually placeable for dense bit-wise XOR networks.
    /// The routing fabric has 2-bit granularity, and the paper notes that
    /// "bit-wise interconnection is allowed with resource underutilization"
    /// — dense single-bit networks cannot saturate a row.
    pub usable_cells_per_row: usize,
    /// Maximum XOR fan-in of a single cell (the paper's "10-bit XOR
    /// operation which can be implemented in a single logic cell").
    pub max_cell_fanin: usize,
    /// State bits one cell can carry through the 4-bit ALU / GF datapath
    /// in companion-feedback mode.
    pub alu_bits_per_cell: usize,
    /// Primary input bandwidth in bits per issue (12 × 32-bit registers).
    pub input_bits: usize,
    /// Primary output bandwidth in bits per issue (4 × 32-bit registers).
    pub output_bits: usize,
    /// Configuration contexts held on-fabric.
    pub contexts: usize,
    /// Cycles to exchange the active context ("in only 2 clock cycles").
    pub context_switch_cycles: u64,
    /// Cycles to load one context from the off-fabric configuration
    /// memory (charged only on cache misses). Calibrated to a mid-size
    /// operation; see [`PicogaParams::load_cycles_estimate`] for the
    /// size-dependent figure.
    pub context_load_cycles: u64,
    /// Configuration bits per logic cell (LUT contents + mode + routing).
    pub config_bits_per_cell: usize,
    /// Per-row pipeline-control configuration bits.
    pub config_bits_per_row: usize,
    /// Width of the configuration bus feeding the cache, bits per cycle.
    pub config_bus_bits: usize,
    /// Fixed fabric clock in Hz.
    pub clock_hz: f64,
    /// Die area of the fabric in mm² (for efficiency figures of merit).
    pub area_mm2: f64,
}

impl PicogaParams {
    /// The PiCoGA instance embedded in DREAM.
    pub fn dream() -> Self {
        PicogaParams {
            rows: 24,
            cells_per_row: 16,
            usable_cells_per_row: 12,
            max_cell_fanin: 10,
            alu_bits_per_cell: 4,
            input_bits: 12 * 32,
            output_bits: 4 * 32,
            contexts: 4,
            context_switch_cycles: 2,
            context_load_cycles: 1000,
            config_bits_per_cell: 80, // 64-bit LUT + mode/routing
            config_bits_per_row: 32,  // row control unit programme
            config_bus_bits: 32,
            clock_hz: 200e6,
            area_mm2: 11.0,
        }
    }

    /// Total logic cells in the array.
    pub fn total_cells(&self) -> usize {
        self.rows * self.cells_per_row
    }

    /// Upper bound on the fan-out one signal may drive through the
    /// routing fabric. The 2-bit-granularity interconnect broadcasts a
    /// signal down a vertical channel in row segments; a channel drives
    /// at most four segments of `cells_per_row` taps before the
    /// segmentation buffers run out (64 on the DREAM instance — the
    /// densest mapped network, the 802.11 scrambler at M=128, peaks at
    /// 33; see the fan-out survey in `tests/analyze_acceptance.rs`).
    pub fn max_signal_fanout(&self) -> usize {
        4 * self.cells_per_row
    }

    /// Configuration bitstream size for an operation occupying
    /// `cells` cells over `rows` rows.
    pub fn config_bits(&self, cells: usize, rows: usize) -> usize {
        cells * self.config_bits_per_cell + rows * self.config_bits_per_row
    }

    /// Off-fabric load time estimate for that operation: bitstream size
    /// over the configuration bus width.
    pub fn load_cycles_estimate(&self, cells: usize, rows: usize) -> u64 {
        (self.config_bits(cells, rows) as u64).div_ceil(self.config_bus_bits as u64)
    }

    /// Sanity-checks the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.rows == 0 || self.cells_per_row == 0 {
            return Err("fabric must have at least one row and one cell".into());
        }
        if self.usable_cells_per_row == 0 || self.usable_cells_per_row > self.cells_per_row {
            return Err("usable cells per row must be in 1..=cells_per_row".into());
        }
        if self.max_cell_fanin < 2 {
            return Err("cell fan-in must be at least 2".into());
        }
        if self.alu_bits_per_cell == 0 {
            return Err("ALU must carry at least one bit per cell".into());
        }
        if self.config_bus_bits == 0 {
            return Err("configuration bus must be at least one bit wide".into());
        }
        if self.contexts == 0 {
            return Err("at least one configuration context is required".into());
        }
        if self.clock_hz <= 0.0 {
            return Err("clock must be positive".into());
        }
        Ok(())
    }
}

impl Default for PicogaParams {
    fn default() -> Self {
        PicogaParams::dream()
    }
}

impl fmt::Display for PicogaParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PiCoGA {}x{} cells, {} contexts, {:.0} MHz, in/out {}/{} bits",
            self.rows,
            self.cells_per_row,
            self.contexts,
            self.clock_hz / 1e6,
            self.input_bits,
            self.output_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dream_instance_matches_paper() {
        let p = PicogaParams::dream();
        assert_eq!(p.contexts, 4);
        assert_eq!(p.context_switch_cycles, 2);
        assert_eq!(p.max_cell_fanin, 10);
        assert_eq!(p.clock_hz, 200e6);
        assert_eq!(p.total_cells(), 384);
        assert!(p.validate().is_ok());
        // 128-bit look-ahead plus 32-bit state fits the input bandwidth.
        assert!(p.input_bits >= 128 + 32);
    }

    #[test]
    fn config_size_model_tracks_occupancy() {
        let p = PicogaParams::dream();
        // The paper's M=128 update op: 248 cells over 23 rows.
        let load = p.load_cycles_estimate(248, 23);
        assert!((400..1500).contains(&load), "got {load}");
        // The flat parameter should be of the same order.
        let ratio = p.context_load_cycles as f64 / load as f64;
        assert!(
            (0.5..3.0).contains(&ratio),
            "flat {} vs {load}",
            p.context_load_cycles
        );
        // Monotone in size.
        assert!(p.load_cycles_estimate(10, 2) < load);
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let mut p = PicogaParams::dream();
        p.rows = 0;
        assert!(p.validate().is_err());
        let mut p = PicogaParams::dream();
        p.max_cell_fanin = 1;
        assert!(p.validate().is_err());
        let mut p = PicogaParams::dream();
        p.clock_hz = 0.0;
        assert!(p.validate().is_err());
    }
}
