//! Fault model for the PiCoGA configuration and datapath.
//!
//! The fabric's whole value proposition is that configuration is *runtime
//! data* — four contexts of LUT/routing bits cached on-fabric, reloaded
//! from off-fabric configuration memory on misses. Mutable runtime data
//! can be corrupted, and this module models the three physical mechanisms
//! the resilience subsystem (crate `resilience`) injects and defends
//! against:
//!
//! * **SEU bit-flips in a resident context** — a single-event upset in the
//!   configuration SRAM redirects one gate fan-in wire or one output tap
//!   ([`ConfigFault::WireFlip`] / [`ConfigFault::TapFlip`]). The placed
//!   operation keeps its shape (widths, rows, feedback) but in general no
//!   longer computes its source matrix.
//! * **Corruption during an off-fabric context load** — the configuration
//!   bus delivers a flipped word while a context streams in
//!   ([`LoadCorruption`], armed on the simulator and applied to the n-th
//!   subsequent load). Unlike a resident-context SEU, a *reload* of the
//!   same operation heals it.
//! * **Stuck-at cell faults** — a physical logic cell is stuck at 0 or 1
//!   ([`ConfigFault::StuckCell`]). The fault is addressed by *physical*
//!   row/cell coordinates, not by configuration contents: reloading a
//!   context does not help, but a re-placed operation may avoid the dead
//!   cell, and the software fallback always does.
//!
//! All faults are injected through [`crate::PicogaSim`]; the seeded
//! campaign driver that decides *what* to inject lives out of this crate,
//! keeping mechanism (here) and policy (resilience) separate.

use std::fmt;

/// One injectable fault on the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigFault {
    /// SEU in a resident context: fan-in `pin` of gate `gate` in context
    /// `slot` is redirected to `new_signal` (which must be an earlier
    /// signal — wires only reach backwards in the row pipeline).
    WireFlip {
        /// Context slot holding the corrupted configuration.
        slot: usize,
        /// Gate index within the operation's network.
        gate: usize,
        /// Fan-in pin of that gate.
        pin: usize,
        /// The signal the wire now reads.
        new_signal: usize,
    },
    /// SEU in a resident context: primary output `output` of context
    /// `slot` is re-tapped to `new_tap` (`None` = constant 0).
    TapFlip {
        /// Context slot holding the corrupted configuration.
        slot: usize,
        /// Primary output index.
        output: usize,
        /// The signal the output now reads (`None` for constant 0).
        new_tap: Option<usize>,
    },
    /// A physical logic cell stuck at `value`. Addressed by physical
    /// coordinates; applies to whatever gate the *active* operation
    /// places on that cell (feed-forward rows only — the single
    /// companion-feedback row uses the ALU datapath, which this model
    /// keeps fault-free).
    StuckCell {
        /// Physical row of the stuck cell.
        row: usize,
        /// Cell index within the row.
        cell: usize,
        /// The value the cell is stuck at.
        value: bool,
    },
}

/// The configuration-relative part of a load-time corruption (the slot is
/// whatever the faulty load targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadFault {
    /// One fan-in wire arrives flipped.
    WireFlip {
        /// Gate index within the loading operation's network.
        gate: usize,
        /// Fan-in pin of that gate.
        pin: usize,
        /// The signal the wire now reads.
        new_signal: usize,
    },
    /// One output tap arrives flipped.
    TapFlip {
        /// Primary output index.
        output: usize,
        /// The signal the output now reads (`None` for constant 0).
        new_tap: Option<usize>,
    },
}

/// A corruption armed against a future off-fabric context load: applied
/// to the operation delivered by load number `load_index` (0-based count
/// of [`crate::PicogaSim::load_context`] calls since construction), then
/// discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadCorruption {
    /// Which future load the corruption strikes.
    pub load_index: u64,
    /// What the corrupted bus delivers.
    pub fault: LoadFault,
}

/// A batch of faults to strike a simulator with: immediate configuration
/// faults plus corruptions armed against future context loads. This is
/// the hook campaign drivers use — build the plan from a seeded RNG,
/// apply it once, and the run is reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults applied immediately (resident contexts, physical cells).
    pub config: Vec<ConfigFault>,
    /// Corruptions armed against future off-fabric loads.
    pub loads: Vec<LoadCorruption>,
}

impl FaultPlan {
    /// A plan with nothing in it.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Total number of faults the plan carries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.config.len() + self.loads.len()
    }

    /// `true` when the plan carries no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.config.is_empty() && self.loads.is_empty()
    }
}

/// Why a fault could not be injected (bad coordinates — the injector is
/// expected to aim at structures that exist).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// Context slot out of range.
    BadSlot {
        /// The requested slot.
        slot: usize,
        /// Number of contexts.
        contexts: usize,
    },
    /// No configuration resident in the addressed slot.
    EmptySlot {
        /// The requested slot.
        slot: usize,
    },
    /// A coordinate does not exist in the target operation or fabric.
    BadCoordinate {
        /// Which coordinate was out of range.
        what: &'static str,
        /// The offending value.
        got: usize,
        /// The exclusive bound it violated.
        bound: usize,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::BadSlot { slot, contexts } => {
                write!(f, "fault targets slot {slot}, fabric has {contexts}")
            }
            InjectError::EmptySlot { slot } => {
                write!(f, "fault targets empty context slot {slot}")
            }
            InjectError::BadCoordinate { what, got, bound } => {
                write!(f, "fault {what} {got} out of range (bound {bound})")
            }
        }
    }
}

impl std::error::Error for InjectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_errors_render() {
        let e = InjectError::BadSlot {
            slot: 7,
            contexts: 4,
        };
        assert!(e.to_string().contains("slot 7"));
        let e = InjectError::BadCoordinate {
            what: "gate",
            got: 99,
            bound: 10,
        };
        assert!(e.to_string().contains("gate 99"));
    }
}
