//! # picoga — Pipelined Configurable Gate Array model and simulator
//!
//! A bit-true, cycle-accurate model of the PiCoGA fabric embedded in the
//! DREAM adaptive DSP (paper §3): a 24×16 array of mixed-grain logic cells
//! organised as one pipeline stage per row, with a 4-context configuration
//! cache, 2-cycle context exchange, 384-bit inputs / 128-bit outputs and a
//! fixed 200 MHz clock.
//!
//! The proprietary silicon is unavailable; this crate is the simulation
//! substitute (see DESIGN.md). It preserves exactly the properties the
//! paper's results rest on: bits-per-cycle issue, pipeline fill, context
//! switch stalls, and the row/cell/I/O budgets that limit the look-ahead
//! factor to 128 bits per cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod fault;
mod op;
mod sim;
mod wavefront;

pub use arch::PicogaParams;
pub use fault::{ConfigFault, FaultPlan, InjectError, LoadCorruption, LoadFault};
pub use op::{CompanionFeedback, MapError, OpStats, PgaOperation, Placement};
pub use sim::{CycleCounters, PicogaSim, SimError};
pub use wavefront::{run_crc_wavefront, WavefrontTrace};
