//! PGA operations: placed, validated configurations for the fabric.
//!
//! A [`PgaOperation`] is the unit the configuration cache holds and the
//! RISC core triggers. Two shapes cover the paper's applications:
//!
//! * [`PgaOperation::linear`] — a pure feed-forward XOR network (the
//!   anti-transform `y = T·x_t`, or a scrambler's whole block step since
//!   its M-block state update is feed-forward too once unrolled).
//! * [`PgaOperation::crc_update`] — the Derby-structured state update: a
//!   deep feed-forward pipeline computing `p = B_Mt·u`, plus **one**
//!   feedback row implementing the companion update
//!   `x′ = A_Mt·x ⊕ p` on the 4-bit ALU/GF cells. Because the loop is
//!   confined to a single row, a new block can issue every cycle (II = 1)
//!   no matter how deep the input network is — the whole point of choosing
//!   Derby's method for a *pipelined* gate array.

use crate::arch::PicogaParams;
use crate::fault::InjectError;
use gf2::{BitMat, BitVec};
use std::fmt;
use xornet::XorNetwork;

/// Errors from mapping an operation onto the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The network needs more rows than the array has.
    InsufficientRows {
        /// Rows required by the placement.
        needed: usize,
        /// Rows physically available.
        available: usize,
    },
    /// A gate exceeds the cell fan-in.
    FaninTooLarge {
        /// The offending fan-in.
        fanin: usize,
        /// The cell limit.
        limit: usize,
    },
    /// Primary input bandwidth exceeded.
    TooManyInputs {
        /// Bits required.
        needed: usize,
        /// Bits available per issue.
        available: usize,
    },
    /// Primary output bandwidth exceeded.
    TooManyOutputs {
        /// Bits required.
        needed: usize,
        /// Bits available per issue.
        available: usize,
    },
    /// The feedback matrix of a CRC update is not in companion form.
    FeedbackNotCompanion,
    /// The feedback row does not fit (state too wide for one row of ALU
    /// cells).
    FeedbackRowTooWide {
        /// Cells needed.
        needed: usize,
        /// Cells per row.
        available: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InsufficientRows { needed, available } => {
                write!(f, "placement needs {needed} rows, array has {available}")
            }
            MapError::FaninTooLarge { fanin, limit } => {
                write!(f, "gate fan-in {fanin} exceeds cell limit {limit}")
            }
            MapError::TooManyInputs { needed, available } => {
                write!(
                    f,
                    "operation needs {needed} input bits, fabric provides {available}"
                )
            }
            MapError::TooManyOutputs { needed, available } => {
                write!(
                    f,
                    "operation needs {needed} output bits, fabric provides {available}"
                )
            }
            MapError::FeedbackNotCompanion => {
                write!(f, "CRC update feedback matrix must be in companion form")
            }
            MapError::FeedbackRowTooWide { needed, available } => {
                write!(
                    f,
                    "feedback row needs {needed} ALU cells, row has {available}"
                )
            }
        }
    }
}

impl std::error::Error for MapError {}

/// Row-by-row placement of a feed-forward network: `rows[r]` lists the gate
/// indices computed in physical row `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    rows: Vec<Vec<usize>>,
}

impl Placement {
    /// Packs a levelized network into rows of at most `cells_per_row`
    /// gates, preserving level order (a level wider than one row spills
    /// into the next; dependencies still only point backwards).
    fn pack(net: &XorNetwork, cells_per_row: usize) -> Placement {
        let mut rows = Vec::new();
        for level in net.levelize() {
            for chunk in level.chunks(cells_per_row) {
                rows.push(chunk.to_vec());
            }
        }
        Placement { rows }
    }

    /// Builds a placement directly from per-row gate-index lists.
    ///
    /// [`PgaOperation`] constructors always pack topologically; this
    /// constructor exists for analysis tooling (e.g. the fabric linter's
    /// hazard tests) that needs to examine arbitrary row assignments.
    pub fn from_rows(rows: Vec<Vec<usize>>) -> Placement {
        Placement { rows }
    }

    /// Rows used.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The physical row computing gate `gate_idx`, if it is placed.
    pub fn row_of(&self, gate_idx: usize) -> Option<usize> {
        self.rows.iter().position(|row| row.contains(&gate_idx))
    }

    /// Gate indices per row.
    pub fn rows(&self) -> &[Vec<usize>] {
        &self.rows
    }

    /// Total cells occupied.
    pub fn cell_count(&self) -> usize {
        self.rows.iter().map(std::vec::Vec::len).sum()
    }
}

/// The single-row companion feedback stage of a CRC update operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompanionFeedback {
    /// State width k.
    pub k: usize,
    /// The last column of the companion matrix (generator coefficients of
    /// the transformed polynomial).
    pub g_col: BitVec,
    /// ALU cells occupied in the feedback row.
    pub cells: usize,
}

impl CompanionFeedback {
    /// Applies `x′ = A_Mt·x ⊕ p` where `A_Mt` is the companion matrix with
    /// last column `g_col`.
    pub fn apply(&self, x: &BitVec, p: &BitVec) -> BitVec {
        debug_assert_eq!(x.len(), self.k);
        debug_assert_eq!(p.len(), self.k);
        let mut next = BitVec::zeros(self.k);
        let top = x.get(self.k - 1);
        for i in 0..self.k {
            let mut v = p.get(i);
            if i > 0 {
                v ^= x.get(i - 1);
            }
            if top && self.g_col.get(i) {
                v = !v;
            }
            if v {
                next.set(i, true);
            }
        }
        next
    }
}

/// Internal shape of an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OpKind {
    Linear,
    CrcUpdate(CompanionFeedback),
    /// Autonomous scrambler: companion state row + output network reading
    /// `[x_t | u]` (the first `k` network inputs are the registered state).
    Scrambler {
        feedback: CompanionFeedback,
        /// Input block bits per issue (M).
        m: usize,
    },
    /// Dense (untransformed) look-ahead update: the network computes the
    /// whole `x′ = A^M·x + B_M·u` over `[x | u]`, so the feedback loop
    /// spans the full pipeline and a new block can only issue once the
    /// previous state has drained (II = latency). The fallback when
    /// Derby's transform does not exist for the generator/M pair.
    CrcUpdateDense {
        /// State width k (the first `k` network inputs and all outputs).
        k: usize,
    },
}

/// A placed, validated PiCoGA operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PgaOperation {
    name: String,
    net: XorNetwork,
    placement: Placement,
    kind: OpKind,
}

/// Resource/latency statistics of a placed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Pipeline rows used (= pipeline depth in stages).
    pub rows: usize,
    /// Logic cells used.
    pub cells: usize,
    /// Primary input bits consumed per issue.
    pub input_bits: usize,
    /// Primary output bits produced per issue.
    pub output_bits: usize,
    /// Initiation interval in cycles (1 for all shapes here).
    pub initiation_interval: u64,
    /// Latency from issue to result, in cycles.
    pub latency: u64,
}

impl OpStats {
    /// Publishes the stats as gauges `{prefix}.rows`, `{prefix}.cells`,
    /// `{prefix}.input_bits`, `{prefix}.output_bits`, `{prefix}.ii`,
    /// `{prefix}.latency` into the unified registry, making the legacy
    /// struct a thin view over it (see [`OpStats::from_registry`]).
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds `i64::MAX` (impossible for any real
    /// fabric) or if a name is already registered as a non-gauge.
    pub fn publish(&self, reg: &mut obs::MetricsRegistry, prefix: &str) {
        let mut set = |suffix: &str, v: i64| {
            let id = reg.gauge(&format!("{prefix}.{suffix}"));
            reg.set_gauge(id, v);
        };
        set("rows", i64::try_from(self.rows).expect("rows fits i64"));
        set("cells", i64::try_from(self.cells).expect("cells fits i64"));
        set(
            "input_bits",
            i64::try_from(self.input_bits).expect("input_bits fits i64"),
        );
        set(
            "output_bits",
            i64::try_from(self.output_bits).expect("output_bits fits i64"),
        );
        set(
            "ii",
            i64::try_from(self.initiation_interval).expect("ii fits i64"),
        );
        set(
            "latency",
            i64::try_from(self.latency).expect("latency fits i64"),
        );
    }

    /// Reassembles stats published under `prefix` by [`OpStats::publish`].
    /// Returns `None` when any of the six gauges is missing.
    #[must_use]
    pub fn from_registry(reg: &obs::MetricsRegistry, prefix: &str) -> Option<OpStats> {
        let get = |suffix: &str| reg.gauge_by_name(&format!("{prefix}.{suffix}"));
        Some(OpStats {
            rows: usize::try_from(get("rows")?).ok()?,
            cells: usize::try_from(get("cells")?).ok()?,
            input_bits: usize::try_from(get("input_bits")?).ok()?,
            output_bits: usize::try_from(get("output_bits")?).ok()?,
            initiation_interval: u64::try_from(get("ii")?).ok()?,
            latency: u64::try_from(get("latency")?).ok()?,
        })
    }
}

impl PgaOperation {
    /// Maps a pure feed-forward network.
    ///
    /// # Errors
    ///
    /// Any of the [`MapError`] resource violations.
    pub fn linear(
        name: impl Into<String>,
        net: XorNetwork,
        params: &PicogaParams,
    ) -> Result<Self, MapError> {
        Self::check_common(&net, params, 0)?;
        let placement = Placement::pack(&net, params.usable_cells_per_row);
        if placement.row_count() > params.rows {
            return Err(MapError::InsufficientRows {
                needed: placement.row_count(),
                available: params.rows,
            });
        }
        Ok(PgaOperation {
            name: name.into(),
            net,
            placement,
            kind: OpKind::Linear,
        })
    }

    /// Maps a Derby CRC state update: `net` computes `p = B_Mt·u` (its
    /// outputs must be `k` bits), and `a_mt` is the companion feedback.
    ///
    /// # Errors
    ///
    /// Any of the [`MapError`] resource violations, including
    /// [`MapError::FeedbackNotCompanion`].
    pub fn crc_update(
        name: impl Into<String>,
        net: XorNetwork,
        a_mt: &BitMat,
        params: &PicogaParams,
    ) -> Result<Self, MapError> {
        if !a_mt.is_companion() {
            return Err(MapError::FeedbackNotCompanion);
        }
        let k = a_mt.rows();
        // The state flows in through the feedback row registers, not the
        // primary inputs, so only u counts against input bandwidth; the
        // state register readout counts against outputs.
        Self::check_common(&net, params, k)?;
        let fb_cells = k.div_ceil(params.alu_bits_per_cell);
        if fb_cells > params.usable_cells_per_row {
            return Err(MapError::FeedbackRowTooWide {
                needed: fb_cells,
                available: params.usable_cells_per_row,
            });
        }
        let placement = Placement::pack(&net, params.usable_cells_per_row);
        let total_rows = placement.row_count() + 1;
        if total_rows > params.rows {
            return Err(MapError::InsufficientRows {
                needed: total_rows,
                available: params.rows,
            });
        }
        Ok(PgaOperation {
            name: name.into(),
            net,
            placement,
            kind: OpKind::CrcUpdate(CompanionFeedback {
                k,
                g_col: a_mt.column(k - 1),
                cells: fb_cells,
            }),
        })
    }

    /// Maps a dense (untransformed) look-ahead CRC update: `net` computes
    /// `x′ = A^M·x + B_M·u` over `[x | u]` (first `k` inputs = state).
    ///
    /// The feedback traverses the whole pipeline, so the operation's
    /// initiation interval equals its latency — the performance penalty
    /// Derby's transformation exists to avoid (paper §2). Use it only when
    /// the transform is mathematically unavailable.
    ///
    /// # Errors
    ///
    /// Any of the [`MapError`] resource violations.
    pub fn crc_update_dense(
        name: impl Into<String>,
        net: XorNetwork,
        k: usize,
        params: &PicogaParams,
    ) -> Result<Self, MapError> {
        debug_assert!(net.n_inputs() > k, "dense update reads [x | u]");
        let m = net.n_inputs() - k;
        if m > params.input_bits {
            return Err(MapError::TooManyInputs {
                needed: m,
                available: params.input_bits,
            });
        }
        if k > params.output_bits {
            return Err(MapError::TooManyOutputs {
                needed: k,
                available: params.output_bits,
            });
        }
        if let Some(g) = net
            .gates()
            .iter()
            .find(|g| g.inputs.len() > params.max_cell_fanin)
        {
            return Err(MapError::FaninTooLarge {
                fanin: g.inputs.len(),
                limit: params.max_cell_fanin,
            });
        }
        let placement = Placement::pack(&net, params.usable_cells_per_row);
        if placement.row_count() > params.rows {
            return Err(MapError::InsufficientRows {
                needed: placement.row_count(),
                available: params.rows,
            });
        }
        Ok(PgaOperation {
            name: name.into(),
            net,
            placement,
            kind: OpKind::CrcUpdateDense { k },
        })
    }

    /// Maps an autonomous scrambler operation: `a_mt` is the (transformed)
    /// companion state update; `net` computes the M output bits from
    /// `[x_t | u]` — its first `k` inputs are the registered state, the
    /// remaining `m` the data block.
    ///
    /// # Errors
    ///
    /// Any of the [`MapError`] resource violations.
    pub fn scrambler(
        name: impl Into<String>,
        net: XorNetwork,
        a_mt: &BitMat,
        m: usize,
        params: &PicogaParams,
    ) -> Result<Self, MapError> {
        if !a_mt.is_companion() {
            return Err(MapError::FeedbackNotCompanion);
        }
        let k = a_mt.rows();
        debug_assert_eq!(net.n_inputs(), k + m, "scrambler net reads [x_t | u]");
        // Only the data block arrives through primary inputs; the state is
        // fabric-resident.
        if m > params.input_bits {
            return Err(MapError::TooManyInputs {
                needed: m,
                available: params.input_bits,
            });
        }
        if net.outputs().len() > params.output_bits {
            return Err(MapError::TooManyOutputs {
                needed: net.outputs().len(),
                available: params.output_bits,
            });
        }
        if let Some(g) = net
            .gates()
            .iter()
            .find(|g| g.inputs.len() > params.max_cell_fanin)
        {
            return Err(MapError::FaninTooLarge {
                fanin: g.inputs.len(),
                limit: params.max_cell_fanin,
            });
        }
        let fb_cells = k.div_ceil(params.alu_bits_per_cell);
        if fb_cells > params.usable_cells_per_row {
            return Err(MapError::FeedbackRowTooWide {
                needed: fb_cells,
                available: params.usable_cells_per_row,
            });
        }
        let placement = Placement::pack(&net, params.usable_cells_per_row);
        let total_rows = placement.row_count() + 1;
        if total_rows > params.rows {
            return Err(MapError::InsufficientRows {
                needed: total_rows,
                available: params.rows,
            });
        }
        Ok(PgaOperation {
            name: name.into(),
            net,
            placement,
            kind: OpKind::Scrambler {
                feedback: CompanionFeedback {
                    k,
                    g_col: a_mt.column(k - 1),
                    cells: fb_cells,
                },
                m,
            },
        })
    }

    fn check_common(
        net: &XorNetwork,
        params: &PicogaParams,
        extra_outputs: usize,
    ) -> Result<(), MapError> {
        if let Some(g) = net
            .gates()
            .iter()
            .find(|g| g.inputs.len() > params.max_cell_fanin)
        {
            return Err(MapError::FaninTooLarge {
                fanin: g.inputs.len(),
                limit: params.max_cell_fanin,
            });
        }
        if net.n_inputs() > params.input_bits {
            return Err(MapError::TooManyInputs {
                needed: net.n_inputs(),
                available: params.input_bits,
            });
        }
        let outs = net.outputs().len().max(extra_outputs);
        if outs > params.output_bits {
            return Err(MapError::TooManyOutputs {
                needed: outs,
                available: params.output_bits,
            });
        }
        Ok(())
    }

    /// Operation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The feed-forward network.
    pub fn network(&self) -> &XorNetwork {
        &self.net
    }

    /// The row placement of the feed-forward network.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The companion feedback stage, if this op has one.
    pub fn feedback(&self) -> Option<&CompanionFeedback> {
        match &self.kind {
            OpKind::CrcUpdate(fb) => Some(fb),
            OpKind::Scrambler { feedback, .. } => Some(feedback),
            OpKind::Linear | OpKind::CrcUpdateDense { .. } => None,
        }
    }

    /// The block size M consumed per issue, if this is a scrambler op.
    pub fn scrambler_m(&self) -> Option<usize> {
        match &self.kind {
            OpKind::Scrambler { m, .. } => Some(*m),
            _ => None,
        }
    }

    /// `true` if this op carries a CRC-update feedback stage.
    pub fn is_crc_update(&self) -> bool {
        matches!(self.kind, OpKind::CrcUpdate(_))
    }

    /// The state width of a dense look-ahead update, if this is one.
    pub fn dense_update_k(&self) -> Option<usize> {
        match &self.kind {
            OpKind::CrcUpdateDense { k } => Some(*k),
            _ => None,
        }
    }

    /// `true` if this op is a pure feed-forward network.
    pub fn is_linear(&self) -> bool {
        matches!(self.kind, OpKind::Linear)
    }

    /// A stable name for the operation's shape, for reports and lints.
    pub fn kind_name(&self) -> &'static str {
        match &self.kind {
            OpKind::Linear => "linear",
            OpKind::CrcUpdate(_) => "crc-update",
            OpKind::Scrambler { .. } => "scrambler",
            OpKind::CrcUpdateDense { .. } => "crc-update-dense",
        }
    }

    /// Fault-injection hook: redirects fan-in `pin` of gate `gate` to
    /// `new_signal`, modelling an SEU in this configuration's routing
    /// bits. The operation keeps its placement and statistics — an upset
    /// does not re-place anything — but in general no longer computes its
    /// source matrix.
    ///
    /// # Errors
    ///
    /// [`InjectError::BadCoordinate`] when the gate, pin, or signal does
    /// not exist (or the signal is not earlier than the gate).
    pub fn corrupt_wire(
        &mut self,
        gate: usize,
        pin: usize,
        new_signal: usize,
    ) -> Result<(), InjectError> {
        let gates = self.net.gates();
        let Some(g) = gates.get(gate) else {
            return Err(InjectError::BadCoordinate {
                what: "gate",
                got: gate,
                bound: gates.len(),
            });
        };
        if pin >= g.inputs.len() {
            return Err(InjectError::BadCoordinate {
                what: "pin",
                got: pin,
                bound: g.inputs.len(),
            });
        }
        let own = self.net.n_inputs() + gate;
        if new_signal >= own {
            return Err(InjectError::BadCoordinate {
                what: "wire source signal",
                got: new_signal,
                bound: own,
            });
        }
        self.net.set_gate_input(gate, pin, new_signal);
        Ok(())
    }

    /// Fault-injection hook: re-taps primary output `output` to
    /// `new_tap` (`None` = constant 0), modelling an SEU in this
    /// configuration's output routing bits.
    ///
    /// # Errors
    ///
    /// [`InjectError::BadCoordinate`] when the output or signal does not
    /// exist.
    pub fn corrupt_output_tap(
        &mut self,
        output: usize,
        new_tap: Option<usize>,
    ) -> Result<(), InjectError> {
        if output >= self.net.outputs().len() {
            return Err(InjectError::BadCoordinate {
                what: "output",
                got: output,
                bound: self.net.outputs().len(),
            });
        }
        if let Some(s) = new_tap {
            if s >= self.net.n_signals() {
                return Err(InjectError::BadCoordinate {
                    what: "tap signal",
                    got: s,
                    bound: self.net.n_signals(),
                });
            }
        }
        self.net.set_output(output, new_tap);
        Ok(())
    }

    /// Resource and timing statistics.
    pub fn stats(&self) -> OpStats {
        let fb = self.feedback();
        let rows = self.placement.row_count() + fb.map_or(0, |_| 1);
        let cells = self.placement.cell_count() + fb.map_or(0, |f| f.cells);
        let ii = match &self.kind {
            OpKind::CrcUpdateDense { .. } => (rows as u64).max(1),
            _ => 1,
        };
        OpStats {
            rows,
            cells,
            input_bits: match &self.kind {
                OpKind::Scrambler { m, .. } => *m,
                OpKind::CrcUpdateDense { k } => self.net.n_inputs() - k,
                _ => self.net.n_inputs(),
            },
            output_bits: match &self.kind {
                OpKind::Linear | OpKind::Scrambler { .. } => self.net.outputs().len(),
                OpKind::CrcUpdate(f) => f.k,
                OpKind::CrcUpdateDense { k } => *k,
            },
            initiation_interval: ii,
            latency: rows as u64,
        }
    }
}

impl fmt::Display for PgaOperation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PGA op '{}': {} rows, {} cells, in {} / out {} bits, latency {}",
            self.name, s.rows, s.cells, s.input_bits, s.output_bits, s.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::Gf2Poly;
    use xornet::{synthesize, SynthOptions};

    fn small_params() -> PicogaParams {
        PicogaParams {
            rows: 4,
            cells_per_row: 4,
            usable_cells_per_row: 4,
            ..PicogaParams::dream()
        }
    }

    fn net_from(mat: &BitMat) -> XorNetwork {
        synthesize(mat, SynthOptions::default())
    }

    #[test]
    fn linear_op_maps_and_reports() {
        let m = BitMat::identity(8);
        let op = PgaOperation::linear("wires", net_from(&m), &PicogaParams::dream()).unwrap();
        let s = op.stats();
        assert_eq!(s.rows, 0); // pure wiring
        assert_eq!(s.initiation_interval, 1);
    }

    #[test]
    fn insufficient_rows_detected() {
        // 16-input parity at fan-in 2 needs 4 levels; give it 2 rows.
        let m = BitMat::from_rows(vec![BitVec::ones(16)]);
        let net = synthesize(
            &m,
            SynthOptions {
                max_fanin: 2,
                share_patterns: false,
            },
        );
        let mut p = small_params();
        p.rows = 2;
        p.cells_per_row = 16;
        p.usable_cells_per_row = 16;
        p.max_cell_fanin = 2;
        match PgaOperation::linear("parity", net, &p) {
            Err(MapError::InsufficientRows { needed, available }) => {
                assert_eq!(available, 2);
                assert!(needed > 2);
            }
            other => panic!("expected InsufficientRows, got {other:?}"),
        }
    }

    #[test]
    fn fanin_violation_detected() {
        let m = BitMat::from_rows(vec![BitVec::ones(16)]);
        let net = synthesize(
            &m,
            SynthOptions {
                max_fanin: 16,
                share_patterns: false,
            },
        );
        let p = PicogaParams::dream(); // cell limit 10
        assert!(matches!(
            PgaOperation::linear("wide", net, &p),
            Err(MapError::FaninTooLarge {
                fanin: 16,
                limit: 10
            })
        ));
    }

    #[test]
    fn io_bandwidth_violations_detected() {
        let p = PicogaParams::dream();
        let m = BitMat::identity(p.input_bits + 1);
        assert!(matches!(
            PgaOperation::linear("too-wide", net_from(&m), &p),
            Err(MapError::TooManyInputs { .. })
        ));
        let m = BitMat::from_rows(vec![BitVec::unit(0, 4); 200]);
        assert!(matches!(
            PgaOperation::linear("too-many-outs", net_from(&m), &p),
            Err(MapError::TooManyOutputs { .. })
        ));
    }

    #[test]
    fn crc_update_requires_companion() {
        let p = PicogaParams::dream();
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        let dense = a.pow(16); // not companion
        let net = net_from(&BitMat::identity(16));
        assert_eq!(
            PgaOperation::crc_update("bad", net.clone(), &dense, &p).unwrap_err(),
            MapError::FeedbackNotCompanion
        );
        assert!(PgaOperation::crc_update("ok", net, &a, &p).is_ok());
    }

    #[test]
    fn companion_feedback_matches_matrix_product() {
        let g = Gf2Poly::from_crc_notation(0x04C11DB7, 32);
        let a = BitMat::companion(&g);
        let fb = CompanionFeedback {
            k: 32,
            g_col: a.column(31),
            cells: 8,
        };
        let mut x = BitVec::from_u64(0x8123_4567, 32);
        let p = BitVec::from_u64(0x0F0F_1234, 32);
        let expect = &a.mul_vec(&x) ^ &p;
        assert_eq!(fb.apply(&x, &p), expect);
        // And with top bit clear (no polynomial fold):
        x.set(31, false);
        let expect = &a.mul_vec(&x) ^ &p;
        assert_eq!(fb.apply(&x, &p), expect);
    }

    #[test]
    fn feedback_row_width_enforced() {
        let mut p = PicogaParams::dream();
        p.cells_per_row = 4; // 4 cells × 4 bits = 16 state bits max
        p.usable_cells_per_row = 4;
        let g = Gf2Poly::from_crc_notation(0x04C11DB7, 32);
        let a = BitMat::companion(&g);
        let net = net_from(&BitMat::identity(32));
        assert!(matches!(
            PgaOperation::crc_update("wide-state", net, &a, &p),
            Err(MapError::FeedbackRowTooWide {
                needed: 8,
                available: 4
            })
        ));
    }

    #[test]
    fn stats_count_feedback_row() {
        let p = PicogaParams::dream();
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        // A nontrivial ff network: B_M for M=16.
        let sys = lfsr_like_b16(&g);
        let net = net_from(&sys);
        let op = PgaOperation::crc_update("upd", net, &a, &p).unwrap();
        let s = op.stats();
        assert!(s.rows >= 2, "ff depth + feedback row");
        assert_eq!(s.latency, s.rows as u64);
        assert_eq!(s.output_bits, 16);
    }

    #[test]
    fn op_stats_round_trip_through_registry() {
        let stats = OpStats {
            rows: 7,
            cells: 42,
            input_bits: 128,
            output_bits: 33,
            initiation_interval: 1,
            latency: 7,
        };
        let mut reg = obs::MetricsRegistry::new();
        stats.publish(&mut reg, "op.eth32.update");
        assert_eq!(OpStats::from_registry(&reg, "op.eth32.update"), Some(stats));
        assert_eq!(OpStats::from_registry(&reg, "op.missing"), None);
    }

    // Builds a B_M-like 16x16 matrix from companion powers.
    fn lfsr_like_b16(g: &Gf2Poly) -> BitMat {
        let a = BitMat::companion(g);
        let mut b = BitVec::zeros(16);
        for i in 0..16 {
            if g.coeff(i) {
                b.set(i, true);
            }
        }
        let cols: Vec<BitVec> = (0..16).map(|j| a.pow(15 - j as u64).mul_vec(&b)).collect();
        BitMat::from_columns(&cols)
    }
}
