//! Cycle-accurate PiCoGA simulator.
//!
//! [`PicogaSim`] executes placed [`PgaOperation`]s bit-true while counting
//! cycles exactly as the fabric's row pipeline would spend them:
//!
//! * one wavefront of data advances one **row** per cycle;
//! * a new block issues every cycle (II = 1) — for CRC updates the state
//!   feedback is confined to its single row, so back-to-back issue is
//!   legal by construction;
//! * switching the active configuration context costs
//!   [`PicogaParams::context_switch_cycles`] (2 on DREAM);
//! * loading a context from off-fabric configuration memory costs
//!   [`PicogaParams::context_load_cycles`] and is charged only on misses.

use crate::arch::PicogaParams;
use crate::fault::{ConfigFault, InjectError, LoadCorruption, LoadFault};
use crate::op::{PgaOperation, Placement};
use gf2::BitVec;
use obs::{EventKind, ObsHub};
use std::fmt;
use xornet::XorNetwork;

/// Errors from driving the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Context slot out of range.
    BadSlot {
        /// The requested slot.
        slot: usize,
        /// Number of contexts.
        contexts: usize,
    },
    /// No operation loaded in the addressed slot.
    EmptySlot {
        /// The requested slot.
        slot: usize,
    },
    /// No context has been activated yet.
    NoActiveContext,
    /// The active operation has a different shape than the call expects.
    WrongOpShape {
        /// What the call needed.
        expected: &'static str,
    },
    /// Input width does not match the operation.
    InputWidthMismatch {
        /// Bits supplied.
        got: usize,
        /// Bits expected.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadSlot { slot, contexts } => {
                write!(
                    f,
                    "context slot {slot} out of range (fabric has {contexts})"
                )
            }
            SimError::EmptySlot { slot } => write!(f, "context slot {slot} is empty"),
            SimError::NoActiveContext => write!(f, "no active context selected"),
            SimError::WrongOpShape { expected } => {
                write!(f, "active operation is not a {expected} operation")
            }
            SimError::InputWidthMismatch { got, expected } => {
                write!(f, "input width {got} does not match operation ({expected})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cycle breakdown maintained by the simulator.
///
/// Since the observability migration this is a thin *view*: the values
/// live in the simulator's [`obs::MetricsRegistry`] under
/// `picoga.cycles.*` and are assembled on demand by
/// [`PicogaSim::counters`]. The struct itself is unchanged so existing
/// callers keep working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounters {
    /// Cycles spent streaming data through an operation (incl. pipeline
    /// fill and drain).
    pub compute: u64,
    /// Cycles spent exchanging the active context.
    pub context_switch: u64,
    /// Cycles spent loading configurations from off-fabric memory.
    pub context_load: u64,
}

impl CycleCounters {
    /// Total cycles.
    pub fn total(&self) -> u64 {
        self.compute + self.context_switch + self.context_load
    }
}

/// The fabric simulator: configuration cache + active pipeline.
#[derive(Debug, Clone)]
pub struct PicogaSim {
    params: PicogaParams,
    contexts: Vec<Option<PgaOperation>>,
    active: Option<usize>,
    /// The observability spine: metrics registry (including the cycle
    /// counters), cycle-stamped event tracer, and fabric profiler. The
    /// layers above reach it through [`PicogaSim::obs_mut`].
    obs: ObsHub,
    /// Physical stuck-at cell faults: `(row, cell, value)`. They outlive
    /// context loads — reloading a configuration does not repair silicon.
    stuck: Vec<(usize, usize, bool)>,
    /// Corruptions armed against future context loads.
    pending_load_faults: Vec<LoadCorruption>,
    /// Count of `load_context` calls since construction (the 0-based
    /// index [`LoadCorruption::load_index`] refers to).
    loads_seen: u64,
}

/// Evaluates the gates of `net` row-by-row following `placement`, starting
/// from primary input values, returning all signal values. Functionally the
/// row order is immaterial (the placement is topological); it is kept
/// explicit so the structure mirrors the hardware — and so physical
/// stuck-at cell faults (`stuck`: gate index → forced value, resolved
/// from physical coordinates by the caller) land on the right gate.
fn eval_by_rows(
    net: &XorNetwork,
    placement: &Placement,
    inputs: &BitVec,
    stuck: &[(usize, bool)],
) -> Vec<bool> {
    let mut values = vec![false; net.n_signals()];
    for (i, v) in values.iter_mut().enumerate().take(net.n_inputs()) {
        *v = inputs.get(i);
    }
    for row in placement.rows() {
        for &gi in row {
            let g = &net.gates()[gi];
            let mut v = g.inputs.iter().fold(false, |acc, &s| acc ^ values[s]);
            if let Some(&(_, forced)) = stuck.iter().find(|&&(sg, _)| sg == gi) {
                v = forced;
            }
            values[net.n_inputs() + gi] = v;
        }
    }
    values
}

/// Resolves physical stuck-cell coordinates to gate indices under one
/// placement (cells holding no gate of this operation are harmless).
fn stuck_gates(stuck: &[(usize, usize, bool)], placement: &Placement) -> Vec<(usize, bool)> {
    stuck
        .iter()
        .filter_map(|&(row, cell, value)| {
            placement
                .rows()
                .get(row)
                .and_then(|r| r.get(cell))
                .map(|&gi| (gi, value))
        })
        .collect()
}

fn outputs_from(net: &XorNetwork, values: &[bool]) -> BitVec {
    let mut out = BitVec::zeros(net.outputs().len());
    for (i, o) in net.outputs().iter().enumerate() {
        if let Some(s) = o {
            if values[*s] {
                out.set(i, true);
            }
        }
    }
    out
}

impl PicogaSim {
    /// Creates a simulator for the given fabric.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail validation.
    pub fn new(params: PicogaParams) -> Self {
        params.validate().expect("invalid fabric parameters");
        PicogaSim {
            contexts: vec![None; params.contexts],
            obs: ObsHub::new(params.rows),
            params,
            active: None,
            stuck: Vec::new(),
            pending_load_faults: Vec::new(),
            loads_seen: 0,
        }
    }

    /// Fabric parameters.
    pub fn params(&self) -> &PicogaParams {
        &self.params
    }

    /// Cycle counters so far (a view assembled from the registry).
    pub fn counters(&self) -> CycleCounters {
        CycleCounters {
            compute: self.obs.registry.counter_value(self.obs.cycles.compute),
            context_switch: self
                .obs
                .registry
                .counter_value(self.obs.cycles.context_switch),
            context_load: self
                .obs
                .registry
                .counter_value(self.obs.cycles.context_load),
        }
    }

    /// Resets the cycle counters (configurations stay loaded; the tracer
    /// and profiler are untouched).
    pub fn reset_counters(&mut self) {
        self.obs.registry.set_counter(self.obs.cycles.compute, 0);
        self.obs
            .registry
            .set_counter(self.obs.cycles.context_switch, 0);
        self.obs
            .registry
            .set_counter(self.obs.cycles.context_load, 0);
    }

    /// The observability hub (metrics registry, tracer, profiler).
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Mutable access to the observability hub, used by the layers above
    /// to register their own metrics and record correlated events.
    pub fn obs_mut(&mut self) -> &mut ObsHub {
        &mut self.obs
    }

    /// Currently active slot.
    pub fn active_slot(&self) -> Option<usize> {
        self.active
    }

    /// The operation resident in context `slot`, if any — read-only
    /// access for inspection and static verification of loaded contexts.
    pub fn context(&self, slot: usize) -> Option<&PgaOperation> {
        self.contexts.get(slot).and_then(Option::as_ref)
    }

    /// Loads an operation into a context slot, charging the off-fabric
    /// load cost.
    ///
    /// # Errors
    ///
    /// [`SimError::BadSlot`] if the slot does not exist.
    pub fn load_context(&mut self, slot: usize, mut op: PgaOperation) -> Result<(), SimError> {
        if slot >= self.contexts.len() {
            return Err(SimError::BadSlot {
                slot,
                contexts: self.contexts.len(),
            });
        }
        let idx = self.loads_seen;
        self.loads_seen += 1;
        // Deliver any corruption armed against this load. A corruption
        // whose coordinates miss the incoming operation lands in unused
        // configuration padding: physically real, semantically harmless.
        let mut i = 0;
        while i < self.pending_load_faults.len() {
            if self.pending_load_faults[i].load_index == idx {
                match self.pending_load_faults.remove(i).fault {
                    LoadFault::WireFlip {
                        gate,
                        pin,
                        new_signal,
                    } => {
                        let _ = op.corrupt_wire(gate, pin, new_signal);
                    }
                    LoadFault::TapFlip { output, new_tap } => {
                        let _ = op.corrupt_output_tap(output, new_tap);
                    }
                }
            } else {
                i += 1;
            }
        }
        self.contexts[slot] = Some(op);
        self.obs.registry.add(
            self.obs.cycles.context_load,
            self.params.context_load_cycles,
        );
        self.obs.event(EventKind::ContextLoad { slot });
        if self.active == Some(slot) {
            self.active = None;
        }
        Ok(())
    }

    /// Injects one fault into the fabric: an SEU in a resident context
    /// (wire/tap flip, mutating the stored configuration) or a physical
    /// stuck-at cell (persisting across context reloads). A second
    /// stuck-at fault on the same cell replaces the first.
    ///
    /// # Errors
    ///
    /// [`InjectError`] when the fault addresses a slot, gate, pin,
    /// signal, or cell that does not exist.
    pub fn inject(&mut self, fault: &ConfigFault) -> Result<(), InjectError> {
        match *fault {
            ConfigFault::WireFlip {
                slot,
                gate,
                pin,
                new_signal,
            } => self
                .context_mut_for_fault(slot)?
                .corrupt_wire(gate, pin, new_signal),
            ConfigFault::TapFlip {
                slot,
                output,
                new_tap,
            } => self
                .context_mut_for_fault(slot)?
                .corrupt_output_tap(output, new_tap),
            ConfigFault::StuckCell { row, cell, value } => {
                if row >= self.params.rows {
                    return Err(InjectError::BadCoordinate {
                        what: "row",
                        got: row,
                        bound: self.params.rows,
                    });
                }
                if cell >= self.params.cells_per_row {
                    return Err(InjectError::BadCoordinate {
                        what: "cell",
                        got: cell,
                        bound: self.params.cells_per_row,
                    });
                }
                if let Some(e) = self.stuck.iter_mut().find(|e| e.0 == row && e.1 == cell) {
                    e.2 = value;
                } else {
                    self.stuck.push((row, cell, value));
                }
                Ok(())
            }
        }
    }

    fn context_mut_for_fault(&mut self, slot: usize) -> Result<&mut PgaOperation, InjectError> {
        if slot >= self.contexts.len() {
            return Err(InjectError::BadSlot {
                slot,
                contexts: self.contexts.len(),
            });
        }
        self.contexts[slot]
            .as_mut()
            .ok_or(InjectError::EmptySlot { slot })
    }

    /// Arms a corruption against a future context load (see
    /// [`LoadCorruption`]). Several corruptions may target the same load.
    pub fn arm_load_corruption(&mut self, corruption: LoadCorruption) {
        self.pending_load_faults.push(corruption);
    }

    /// Applies a whole [`FaultPlan`]: injects every configuration fault
    /// and arms every load corruption. Stops at the first invalid
    /// coordinate (faults before it stay applied).
    ///
    /// # Errors
    ///
    /// The first [`InjectError`] encountered.
    pub fn apply_plan(&mut self, plan: &crate::fault::FaultPlan) -> Result<(), InjectError> {
        for f in &plan.config {
            self.inject(f)?;
        }
        for &c in &plan.loads {
            self.arm_load_corruption(c);
        }
        Ok(())
    }

    /// Context loads performed since construction — the index space of
    /// [`LoadCorruption::load_index`].
    pub fn loads_seen(&self) -> u64 {
        self.loads_seen
    }

    /// The physical stuck-at cell faults currently present, as
    /// `(row, cell, value)` triples.
    pub fn stuck_cells(&self) -> &[(usize, usize, bool)] {
        &self.stuck
    }

    /// Repairs all stuck-at cell faults (test/diagnostic hook; real
    /// silicon stays broken, which is what the recovery ladder's
    /// re-placement and software-fallback rungs exist for).
    pub fn clear_stuck_cells(&mut self) {
        self.stuck.clear();
    }

    /// Makes `slot` the active context, charging the 2-cycle exchange when
    /// it actually changes.
    ///
    /// # Errors
    ///
    /// [`SimError::BadSlot`] / [`SimError::EmptySlot`].
    pub fn switch_to(&mut self, slot: usize) -> Result<(), SimError> {
        if slot >= self.contexts.len() {
            return Err(SimError::BadSlot {
                slot,
                contexts: self.contexts.len(),
            });
        }
        if self.contexts[slot].is_none() {
            return Err(SimError::EmptySlot { slot });
        }
        if self.active != Some(slot) {
            self.obs.registry.add(
                self.obs.cycles.context_switch,
                self.params.context_switch_cycles,
            );
            self.obs.event(EventKind::ContextSwitch { slot });
            self.active = Some(slot);
        }
        Ok(())
    }

    fn active_op(&self) -> Result<&PgaOperation, SimError> {
        let slot = self.active.ok_or(SimError::NoActiveContext)?;
        self.contexts[slot]
            .as_ref()
            .ok_or(SimError::EmptySlot { slot })
    }

    /// Runs one issue of the active **linear** operation, charging its full
    /// latency (used for one-shot networks like the CRC anti-transform).
    ///
    /// # Errors
    ///
    /// Shape/width mismatches per [`SimError`].
    pub fn run_linear(&mut self, inputs: &BitVec) -> Result<BitVec, SimError> {
        let op = self.active_op()?;
        if !op.is_linear() {
            return Err(SimError::WrongOpShape { expected: "linear" });
        }
        let net = op.network();
        if inputs.len() != net.n_inputs() {
            return Err(SimError::InputWidthMismatch {
                got: inputs.len(),
                expected: net.n_inputs(),
            });
        }
        let stats = op.stats();
        let stuck = stuck_gates(&self.stuck, op.placement());
        let values = eval_by_rows(net, op.placement(), inputs, &stuck);
        let out = outputs_from(net, &values);
        let latency = stats.latency.max(1);
        self.obs.registry.add(self.obs.cycles.compute, latency);
        self.obs.profiler.record_stream(stats.rows, latency, 1);
        Ok(out)
    }

    /// Physical self-test of the active operation: evaluates the zero
    /// vector and every input basis vector through the physical
    /// datapath (stuck-at effects included) and compares each response
    /// against the resident configuration's matrix.
    ///
    /// This is *complete* for the fabric's fault model: the networks
    /// are XOR-only, so any combination of stuck-at cells leaves the
    /// physical function affine, and an affine map equals the
    /// configured linear map iff the two agree on the zero vector and
    /// the full input basis. (Configuration corruption — wire or tap
    /// flips — moves the matrix itself and is the scrub's job; this
    /// probe catches what the scrub structurally cannot.)
    ///
    /// Charges one latency per evaluation: self-checking is not free.
    ///
    /// Returns `true` when the datapath matches the configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::NoActiveContext`] / [`SimError::EmptySlot`].
    pub fn affine_probe(&mut self) -> Result<bool, SimError> {
        let op = self.active_op()?;
        let net = op.network().clone();
        let placement = op.placement().clone();
        let stats = op.stats();
        let latency = stats.latency.max(1);
        let stuck = stuck_gates(&self.stuck, &placement);
        let n = net.n_inputs();
        let expected = net.to_matrix();
        self.obs
            .registry
            .add(self.obs.cycles.compute, latency * (n as u64 + 1));
        self.obs
            .profiler
            .record_iterative(stats.rows, latency, n as u64 + 1);

        let zero = BitVec::zeros(n);
        let values = eval_by_rows(&net, &placement, &zero, &stuck);
        if outputs_from(&net, &values) != BitVec::zeros(net.outputs().len()) {
            return Ok(false);
        }
        for i in 0..n {
            let mut e = BitVec::zeros(n);
            e.set(i, true);
            let values = eval_by_rows(&net, &placement, &e, &stuck);
            if outputs_from(&net, &values) != expected.column(i) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Streams `blocks` through the active **CRC update** operation,
    /// starting from transformed state `x_t`; returns the final transformed
    /// state.
    ///
    /// Cycle cost: pipeline latency + one cycle per additional block
    /// (II = 1). An empty stream costs nothing.
    ///
    /// # Errors
    ///
    /// Shape/width mismatches per [`SimError`].
    pub fn run_crc_stream<'a, I>(&mut self, x_t: &BitVec, blocks: I) -> Result<BitVec, SimError>
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let op = self.active_op()?;
        if !op.is_crc_update() {
            return Err(SimError::WrongOpShape {
                expected: "CRC update",
            });
        }
        let fb = op.feedback().expect("crc update has feedback").clone();
        let net = op.network().clone();
        let placement = op.placement().clone();
        let stats = op.stats();
        let latency = stats.latency;
        let stuck = stuck_gates(&self.stuck, &placement);

        let mut state = x_t.clone();
        let mut n: u64 = 0;
        for block in blocks {
            if block.len() != net.n_inputs() {
                return Err(SimError::InputWidthMismatch {
                    got: block.len(),
                    expected: net.n_inputs(),
                });
            }
            // Feed-forward wavefront, then the single feedback row.
            let values = eval_by_rows(&net, &placement, block, &stuck);
            let p = outputs_from(&net, &values);
            state = fb.apply(&state, &p);
            n += 1;
        }
        if n > 0 {
            self.obs
                .registry
                .add(self.obs.cycles.compute, latency + (n - 1));
            self.obs.profiler.record_stream(stats.rows, latency, n);
        }
        Ok(state)
    }

    /// Streams `blocks` through the active **dense look-ahead** update
    /// operation: `x′ = net([x | u])`. The feedback spans the whole
    /// pipeline, so each block costs the full latency (II = latency).
    ///
    /// # Errors
    ///
    /// Shape/width mismatches per [`SimError`].
    pub fn run_crc_stream_dense<'a, I>(
        &mut self,
        state: &BitVec,
        blocks: I,
    ) -> Result<BitVec, SimError>
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let op = self.active_op()?;
        let Some(k) = op.dense_update_k() else {
            return Err(SimError::WrongOpShape {
                expected: "dense CRC update",
            });
        };
        let net = op.network().clone();
        let placement = op.placement().clone();
        let stats = op.stats();
        let latency = stats.latency.max(1);
        let m = net.n_inputs() - k;
        let stuck = stuck_gates(&self.stuck, &placement);

        let mut st = state.clone();
        let mut n: u64 = 0;
        for block in blocks {
            if block.len() != m {
                return Err(SimError::InputWidthMismatch {
                    got: block.len(),
                    expected: m,
                });
            }
            let inputs = st.concat(block);
            let values = eval_by_rows(&net, &placement, &inputs, &stuck);
            st = outputs_from(&net, &values);
            self.obs.registry.add(self.obs.cycles.compute, latency);
            n += 1;
        }
        self.obs.profiler.record_iterative(stats.rows, latency, n);
        Ok(st)
    }

    /// Streams an **interleaved** sequence of `(lane, block)` items through
    /// the active CRC update operation, one per-lane state in `states`.
    ///
    /// All lanes share the single pipeline: the whole batch costs one fill
    /// (latency) plus one cycle per block, which is exactly the Kong–Parhi
    /// interleaving benefit the paper's Fig. 5 exploits.
    ///
    /// # Errors
    ///
    /// Shape/width/lane mismatches per [`SimError`].
    pub fn run_crc_interleaved<'a, I>(
        &mut self,
        states: &mut [BitVec],
        items: I,
    ) -> Result<(), SimError>
    where
        I: IntoIterator<Item = (usize, &'a BitVec)>,
    {
        let op = self.active_op()?;
        if !op.is_crc_update() {
            return Err(SimError::WrongOpShape {
                expected: "CRC update",
            });
        }
        let fb = op.feedback().expect("crc update has feedback").clone();
        let net = op.network().clone();
        let placement = op.placement().clone();
        let stats = op.stats();
        let latency = stats.latency;
        let stuck = stuck_gates(&self.stuck, &placement);

        let mut n: u64 = 0;
        for (lane, block) in items {
            if lane >= states.len() {
                return Err(SimError::BadSlot {
                    slot: lane,
                    contexts: states.len(),
                });
            }
            if block.len() != net.n_inputs() {
                return Err(SimError::InputWidthMismatch {
                    got: block.len(),
                    expected: net.n_inputs(),
                });
            }
            let values = eval_by_rows(&net, &placement, block, &stuck);
            let p = outputs_from(&net, &values);
            states[lane] = fb.apply(&states[lane], &p);
            n += 1;
        }
        if n > 0 {
            self.obs
                .registry
                .add(self.obs.cycles.compute, latency + (n - 1));
            self.obs.profiler.record_stream(stats.rows, latency, n);
        }
        Ok(())
    }

    /// Streams `blocks` through the active **scrambler** operation from
    /// transformed seed `x_t`; returns the concatenated output bits and
    /// the final transformed state.
    ///
    /// # Errors
    ///
    /// Shape/width mismatches per [`SimError`].
    pub fn run_scrambler_stream<'a, I>(
        &mut self,
        x_t: &BitVec,
        blocks: I,
    ) -> Result<(BitVec, BitVec), SimError>
    where
        I: IntoIterator<Item = &'a BitVec>,
    {
        let op = self.active_op()?;
        let Some(m) = op.scrambler_m() else {
            return Err(SimError::WrongOpShape {
                expected: "scrambler",
            });
        };
        let fb = op.feedback().expect("scrambler has feedback").clone();
        let net = op.network().clone();
        let placement = op.placement().clone();
        let stats = op.stats();
        let latency = stats.latency;
        let stuck = stuck_gates(&self.stuck, &placement);

        let mut state = x_t.clone();
        let mut out = BitVec::zeros(0);
        let mut n: u64 = 0;
        for block in blocks {
            if block.len() != m {
                return Err(SimError::InputWidthMismatch {
                    got: block.len(),
                    expected: m,
                });
            }
            // Output network reads the pre-update state and the block.
            let inputs = state.concat(block);
            let values = eval_by_rows(&net, &placement, &inputs, &stuck);
            out = out.concat(&outputs_from(&net, &values));
            // Autonomous companion update (no data into the loop).
            let zero = BitVec::zeros(fb.k);
            state = fb.apply(&state, &zero);
            n += 1;
        }
        if n > 0 {
            self.obs
                .registry
                .add(self.obs.cycles.compute, latency + (n - 1));
            self.obs.profiler.record_stream(stats.rows, latency, n);
        }
        Ok((out, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{BitMat, Gf2Poly};
    use xornet::{synthesize, SynthOptions};

    fn params() -> PicogaParams {
        PicogaParams::dream()
    }

    fn identity_op(n: usize) -> PgaOperation {
        let net = synthesize(&BitMat::identity(n), SynthOptions::default());
        PgaOperation::linear("id", net, &params()).unwrap()
    }

    #[test]
    fn context_management_costs() {
        let mut sim = PicogaSim::new(params());
        sim.load_context(0, identity_op(8)).unwrap();
        sim.load_context(1, identity_op(8)).unwrap();
        assert_eq!(
            sim.counters().context_load,
            2 * params().context_load_cycles
        );
        sim.switch_to(0).unwrap();
        sim.switch_to(0).unwrap(); // no-op
        sim.switch_to(1).unwrap();
        assert_eq!(
            sim.counters().context_switch,
            2 * params().context_switch_cycles
        );
    }

    #[test]
    fn bad_slots_and_shapes_are_errors() {
        let mut sim = PicogaSim::new(params());
        assert!(matches!(
            sim.switch_to(9),
            Err(SimError::BadSlot { slot: 9, .. })
        ));
        assert!(matches!(
            sim.switch_to(1),
            Err(SimError::EmptySlot { slot: 1 })
        ));
        assert!(matches!(
            sim.run_linear(&BitVec::zeros(4)),
            Err(SimError::NoActiveContext)
        ));
        sim.load_context(0, identity_op(8)).unwrap();
        sim.switch_to(0).unwrap();
        assert!(matches!(
            sim.run_linear(&BitVec::zeros(4)),
            Err(SimError::InputWidthMismatch {
                got: 4,
                expected: 8
            })
        ));
        assert!(matches!(
            sim.run_crc_stream(&BitVec::zeros(8), std::iter::empty()),
            Err(SimError::WrongOpShape { .. })
        ));
    }

    #[test]
    fn linear_op_computes_and_charges_latency() {
        let mut sim = PicogaSim::new(params());
        // y = T·x for a random-ish invertible T: use a companion power.
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let t = BitMat::companion(&g).pow(5);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params()).unwrap();
        let lat = op.stats().latency;
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        sim.reset_counters();
        let x = BitVec::from_u64(0xBEEF, 16);
        let y = sim.run_linear(&x).unwrap();
        assert_eq!(y, t.mul_vec(&x));
        assert_eq!(sim.counters().compute, lat.max(1));
    }

    #[test]
    fn crc_stream_cycle_accounting_is_ii1() {
        // Build a small Derby-like op by hand: k=16, M=16.
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        // Feed-forward p = B·u with B = [A^15·b … b].
        let mut b = BitVec::zeros(16);
        for i in 0..16 {
            if g.coeff(i) {
                b.set(i, true);
            }
        }
        let cols: Vec<BitVec> = (0..16u64).map(|j| a.pow(15 - j).mul_vec(&b)).collect();
        let bm = BitMat::from_columns(&cols);
        let net = synthesize(&bm, SynthOptions::default());
        let op = PgaOperation::crc_update("upd", net, &a, &params()).unwrap();
        let latency = op.stats().latency;

        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        sim.reset_counters();

        let blocks: Vec<BitVec> = (0..10u64)
            .map(|i| BitVec::from_u64(i * 37 + 1, 16))
            .collect();
        let fin = sim
            .run_crc_stream(&BitVec::zeros(16), blocks.iter())
            .unwrap();
        // Cycles: latency + (n-1).
        assert_eq!(sim.counters().compute, latency + 9);

        // Functional check against the matrix semantics.
        let mut expect = BitVec::zeros(16);
        for blk in &blocks {
            expect = &a.mul_vec(&expect) ^ &bm.mul_vec(blk);
        }
        assert_eq!(fin, expect);
    }

    #[test]
    fn empty_stream_is_free() {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        let net = synthesize(&BitMat::identity(16), SynthOptions::default());
        let op = PgaOperation::crc_update("upd", net, &a, &params()).unwrap();
        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        sim.reset_counters();
        let s = sim
            .run_crc_stream(&BitVec::from_u64(0xAA, 16), std::iter::empty())
            .unwrap();
        assert_eq!(s.to_u64(), 0xAA);
        assert_eq!(sim.counters().compute, 0);
    }

    #[test]
    fn scrambler_stream_matches_block_semantics() {
        // Scrambler: k=7, M=8, y = C_stack·x ⊕ u, x' = companion·x.
        let s_poly = Gf2Poly::from_u64(0b1001_0001);
        let a_fib = lfsr_fibonacci(&s_poly);
        // Use Derby on A^8 to get companion feedback.
        let a8 = a_fib.pow(8);
        let t = a8.krylov(&BitVec::unit(0, 7));
        let t_inv = t.inverse().unwrap();
        let a8t = t_inv.mul(&a8).mul(&t);
        assert!(a8t.is_companion());
        // Output rows: y(i) = c·A^i·x for i in 0..8, transformed by T, plus u.
        let c_row = a_fib.row(6).clone();
        let mut rows = Vec::new();
        for i in 0..8u64 {
            // First 7 columns: c·A^i·T; column 7+i: the u identity bit.
            let r7 = BitMat::from_rows(vec![c_row.clone()])
                .mul(&a_fib.pow(i))
                .mul(&t)
                .row(0)
                .clone();
            let mut full = r7.resized(15);
            full.set(7 + i as usize, true);
            rows.push(full);
        }
        let net = synthesize(&BitMat::from_rows(rows.clone()), SynthOptions::default());
        let op = PgaOperation::scrambler("scr", net, &a8t, 8, &params()).unwrap();

        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();

        let seed = BitVec::from_u64(0x5B, 7);
        let x_t0 = t_inv.mul_vec(&seed);
        let blocks: Vec<BitVec> = (0..4u64).map(|i| BitVec::from_u64(0x9E ^ i, 8)).collect();
        let (out, _fin) = sim.run_scrambler_stream(&x_t0, blocks.iter()).unwrap();

        // Reference: serial Fibonacci scrambler.
        let mut x = seed.clone();
        let mut expect = BitVec::zeros(0);
        for blk in &blocks {
            for j in 0..8 {
                let y = c_row.dot(&x) ^ blk.get(j);
                expect = expect.concat(&BitVec::from_bits([y]));
                x = a_fib.mul_vec(&x);
            }
        }
        assert_eq!(out, expect);
    }

    /// Find a wire flip that provably changes the operation's matrix, and
    /// a basis input on which the corrupted matrix disagrees with `t`.
    fn semantic_wire_flip(op: &PgaOperation) -> (usize, usize, BitVec) {
        let t = op.network().to_matrix();
        for gate in (0..op.network().gate_count()).rev() {
            for new_signal in 0..op.network().n_inputs() {
                let mut probe = op.clone();
                if probe.corrupt_wire(gate, 0, new_signal).is_err() {
                    continue;
                }
                let m = probe.network().to_matrix();
                if m == t {
                    continue;
                }
                for j in 0..t.cols() {
                    if m.column(j) != t.column(j) {
                        let mut x = BitVec::zeros(t.cols());
                        x.set(j, true);
                        return (gate, new_signal, x);
                    }
                }
            }
        }
        panic!("no semantic wire flip found");
    }

    #[test]
    fn wire_flip_changes_semantics_and_reload_heals_it() {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let t = BitMat::companion(&g).pow(7);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params()).unwrap();
        let (gate, new_signal, x) = semantic_wire_flip(&op);
        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        let clean = sim.run_linear(&x).unwrap();
        assert_eq!(clean, t.mul_vec(&x));

        sim.inject(&ConfigFault::WireFlip {
            slot: 0,
            gate,
            pin: 0,
            new_signal,
        })
        .unwrap();
        let corrupt = sim.run_linear(&x).unwrap();
        assert_ne!(corrupt, clean, "SEU must change the computed function");

        // Reloading the pristine configuration heals the SEU.
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        assert_eq!(sim.run_linear(&x).unwrap(), clean);
    }

    #[test]
    fn stuck_cell_survives_reload_and_tap_flip_zeroes_an_output() {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let t = BitMat::companion(&g).pow(7);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params()).unwrap();
        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        let x = BitVec::from_u64(0xFFFF, 16);
        let clean = sim.run_linear(&x).unwrap();

        // Stick the first placed cell at 1; a reload must NOT repair it.
        sim.inject(&ConfigFault::StuckCell {
            row: 0,
            cell: 0,
            value: true,
        })
        .unwrap();
        assert_eq!(sim.stuck_cells().len(), 1);
        let faulty = sim.run_linear(&BitVec::zeros(16)).unwrap();
        assert!(!faulty.is_zero(), "stuck-at-1 breaks linearity at x = 0");
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        let still_faulty = sim.run_linear(&BitVec::zeros(16)).unwrap();
        assert!(!still_faulty.is_zero(), "reload cannot fix silicon");
        sim.clear_stuck_cells();
        assert_eq!(sim.run_linear(&x).unwrap(), clean);

        // Tap flip: output 3 re-tapped to constant 0.
        sim.inject(&ConfigFault::TapFlip {
            slot: 0,
            output: 3,
            new_tap: None,
        })
        .unwrap();
        let tapped = sim.run_linear(&BitVec::ones(16)).unwrap();
        assert!(!tapped.get(3));
    }

    #[test]
    fn affine_probe_is_complete_for_stuck_cells() {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let t = BitMat::companion(&g).pow(7);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params()).unwrap();
        let mut sim = PicogaSim::new(params());
        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        assert!(sim.affine_probe().unwrap(), "clean datapath passes");

        // Soundness of a passing verdict: for every stuck-at fault
        // under a placed gate, if the probe passes then the physical
        // function is exact at arbitrary (non-basis) inputs too — the
        // property a sampled known-answer probe cannot promise.
        let placement = op.placement().clone();
        let witnesses: Vec<BitVec> = (1..=32u64)
            .map(|k| BitVec::from_u64(k.wrapping_mul(0x9E37_79B9) & 0xFFFF, 16))
            .collect();
        let mut detections = 0;
        for (ri, row) in placement.rows().iter().enumerate() {
            for ci in 0..row.len() {
                for value in [false, true] {
                    sim.clear_stuck_cells();
                    sim.inject(&ConfigFault::StuckCell {
                        row: ri,
                        cell: ci,
                        value,
                    })
                    .unwrap();
                    let probe_ok = sim.affine_probe().unwrap();
                    if !probe_ok {
                        detections += 1;
                        continue;
                    }
                    for x in &witnesses {
                        assert_eq!(
                            sim.run_linear(x).unwrap(),
                            t.mul_vec(x),
                            "probe passed but stuck ({ri},{ci})={value} corrupts {x:?}"
                        );
                    }
                }
            }
        }
        assert!(detections > 0, "the sweep was actually exercised");
        sim.clear_stuck_cells();
        assert!(sim.affine_probe().unwrap());
    }

    #[test]
    fn load_corruption_strikes_the_armed_load_only() {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let t = BitMat::companion(&g).pow(3);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params()).unwrap();
        let (gate, new_signal, x) = semantic_wire_flip(&op);
        let mut sim = PicogaSim::new(params());
        // Arm against the second load (index 1).
        sim.arm_load_corruption(LoadCorruption {
            load_index: 1,
            fault: LoadFault::WireFlip {
                gate,
                pin: 0,
                new_signal,
            },
        });
        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        assert_eq!(sim.run_linear(&x).unwrap(), t.mul_vec(&x), "load 0 clean");

        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        assert_ne!(sim.run_linear(&x).unwrap(), t.mul_vec(&x), "load 1 hit");

        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        assert_eq!(sim.run_linear(&x).unwrap(), t.mul_vec(&x), "load 2 clean");
        assert_eq!(sim.loads_seen(), 3);
    }

    #[test]
    fn inject_rejects_bad_coordinates() {
        let mut sim = PicogaSim::new(params());
        assert!(matches!(
            sim.inject(&ConfigFault::WireFlip {
                slot: 9,
                gate: 0,
                pin: 0,
                new_signal: 0
            }),
            Err(InjectError::BadSlot { slot: 9, .. })
        ));
        assert!(matches!(
            sim.inject(&ConfigFault::TapFlip {
                slot: 0,
                output: 0,
                new_tap: None
            }),
            Err(InjectError::EmptySlot { slot: 0 })
        ));
        sim.load_context(0, identity_op(8)).unwrap();
        assert!(matches!(
            sim.inject(&ConfigFault::WireFlip {
                slot: 0,
                gate: 999,
                pin: 0,
                new_signal: 0
            }),
            Err(InjectError::BadCoordinate { what: "gate", .. })
        ));
        assert!(matches!(
            sim.inject(&ConfigFault::StuckCell {
                row: 999,
                cell: 0,
                value: true
            }),
            Err(InjectError::BadCoordinate { what: "row", .. })
        ));
    }

    fn lfsr_fibonacci(s: &Gf2Poly) -> BitMat {
        let k = s.degree().unwrap();
        let mut a = BitMat::zeros(k, k);
        for i in 0..k - 1 {
            a.set(i, i + 1, true);
        }
        for i in 0..k {
            if s.coeff(i) {
                a.set(k - 1, i, true);
            }
        }
        a
    }
}
