//! Explicit wavefront simulation of the row pipeline.
//!
//! The streaming methods of [`crate::PicogaSim`] use closed-form cycle
//! accounting (`latency + n − 1` at II = 1). This module executes the same
//! operation with an **explicit per-cycle wavefront model** — every
//! in-flight block advances one physical row per clock, the feedback row
//! reads the state register in program order — and reports what actually
//! happened cycle by cycle. Tests assert the two models agree, backing the
//! "cycle-accurate" claim structurally rather than by definition.

use crate::op::PgaOperation;
use gf2::BitVec;

/// What the wavefront run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavefrontTrace {
    /// Total cycles from first issue to last state-register update.
    pub cycles: u64,
    /// Maximum number of blocks simultaneously in flight.
    pub max_in_flight: usize,
    /// Cycle at which each block's feedback update landed (issue order).
    pub completion_cycles: Vec<u64>,
    /// The final state register.
    pub final_state: BitVec,
}

/// One in-flight block: its signal values and the next row to execute.
struct Wave {
    values: Vec<bool>,
    next_row: usize,
    issued_at: u64,
}

/// Runs a **CRC update** operation over `blocks` with an explicit
/// wavefront per block, II = 1 issue, and the feedback row executing in
/// program order as waves drain.
///
/// # Panics
///
/// Panics if the operation is not a CRC update or a block width
/// mismatches.
pub fn run_crc_wavefront(op: &PgaOperation, x_t0: &BitVec, blocks: &[BitVec]) -> WavefrontTrace {
    let fb = op
        .feedback()
        .expect("wavefront model requires a companion-feedback operation");
    assert!(op.is_crc_update(), "operation must be a CRC update");
    let net = op.network();
    let placement = op.placement();
    let ff_rows = placement.row_count();

    let mut state = x_t0.clone();
    let mut in_flight: Vec<Wave> = Vec::new();
    let mut next_issue = 0usize;
    let mut cycle: u64 = 0;
    let mut max_in_flight = 0usize;
    let mut completions = Vec::with_capacity(blocks.len());

    while next_issue < blocks.len() || !in_flight.is_empty() {
        cycle += 1;

        // One new block issues per cycle (II = 1) and traverses row 0
        // within its issue cycle.
        if next_issue < blocks.len() {
            let block = &blocks[next_issue];
            assert_eq!(block.len(), net.n_inputs(), "block width mismatch");
            let mut values = vec![false; net.n_signals()];
            for (i, v) in values.iter_mut().enumerate().take(net.n_inputs()) {
                *v = block.get(i);
            }
            in_flight.push(Wave {
                values,
                next_row: 0,
                issued_at: cycle,
            });
            next_issue += 1;
        }
        max_in_flight = max_in_flight.max(in_flight.len());

        // Every wave advances one row this cycle (oldest first, so the
        // feedback row sees them in program order).
        let mut retired = 0;
        for w in &mut in_flight {
            if w.next_row < ff_rows {
                for &gi in &placement.rows()[w.next_row] {
                    let g = &net.gates()[gi];
                    let v = g.inputs.iter().fold(false, |acc, &s| acc ^ w.values[s]);
                    w.values[net.n_inputs() + gi] = v;
                }
                w.next_row += 1;
            } else {
                // Feedback row: fold p into the state register.
                let mut p = BitVec::zeros(net.outputs().len());
                for (i, o) in net.outputs().iter().enumerate() {
                    if let Some(s) = o {
                        if w.values[*s] {
                            p.set(i, true);
                        }
                    }
                }
                state = fb.apply(&state, &p);
                completions.push(cycle);
                debug_assert_eq!(cycle - w.issued_at, ff_rows as u64);
                retired += 1;
            }
        }
        in_flight.drain(..retired);
    }

    WavefrontTrace {
        cycles: cycle,
        max_in_flight,
        completion_cycles: completions,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::PicogaParams;
    use crate::sim::PicogaSim;
    use gf2::{BitMat, Gf2Poly};
    use xornet::{synthesize, SynthOptions};

    fn update_op() -> PgaOperation {
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        let mut b = BitVec::zeros(16);
        for i in 0..16 {
            if g.coeff(i) {
                b.set(i, true);
            }
        }
        let cols: Vec<BitVec> = (0..16u64).map(|j| a.pow(15 - j).mul_vec(&b)).collect();
        let bm = BitMat::from_columns(&cols);
        let net = synthesize(&bm, SynthOptions::default());
        PgaOperation::crc_update("upd", net, &a, &PicogaParams::dream()).unwrap()
    }

    fn blocks(n: usize) -> Vec<BitVec> {
        (0..n as u64)
            .map(|i| BitVec::from_u64(i * 59 + 17, 16))
            .collect()
    }

    #[test]
    fn wavefront_agrees_with_closed_form_cycles() {
        let op = update_op();
        let latency = op.stats().latency;
        for n in [1usize, 2, 5, 37] {
            let bl = blocks(n);
            let trace = run_crc_wavefront(&op, &BitVec::zeros(16), &bl);
            assert_eq!(trace.cycles, latency + n as u64 - 1, "n={n}");
            // Back-to-back completion, one per cycle after fill.
            for w in trace.completion_cycles.windows(2) {
                assert_eq!(w[1] - w[0], 1);
            }
        }
    }

    #[test]
    fn wavefront_state_matches_streaming_simulator() {
        let op = update_op();
        let bl = blocks(23);
        let trace = run_crc_wavefront(&op, &BitVec::zeros(16), &bl);

        let mut sim = PicogaSim::new(PicogaParams::dream());
        sim.load_context(0, op).unwrap();
        sim.switch_to(0).unwrap();
        sim.reset_counters();
        let fin = sim.run_crc_stream(&BitVec::zeros(16), bl.iter()).unwrap();
        assert_eq!(trace.final_state, fin);
        assert_eq!(trace.cycles, sim.counters().compute);
    }

    #[test]
    fn pipeline_occupancy_is_bounded_by_depth() {
        let op = update_op();
        let depth = op.stats().rows;
        let trace = run_crc_wavefront(&op, &BitVec::zeros(16), &blocks(40));
        assert!(trace.max_in_flight <= depth);
        // With enough blocks the pipeline actually fills.
        assert!(
            trace.max_in_flight >= depth - 1,
            "got {}",
            trace.max_in_flight
        );
    }

    #[test]
    fn empty_stream_is_zero_cycles() {
        let op = update_op();
        let trace = run_crc_wavefront(&op, &BitVec::from_u64(0xBEEF, 16), &[]);
        assert_eq!(trace.cycles, 0);
        assert_eq!(trace.final_state.to_u64(), 0xBEEF);
    }
}
