//! Property-based tests of the fabric model's invariants.

use gf2::{BitMat, BitVec, Gf2Poly};
use picoga::{run_crc_wavefront, PgaOperation, PicogaParams, PicogaSim};
use proptest::prelude::*;
use xornet::{synthesize, SynthOptions};

fn random_linear_op(seed: u64, rows: usize, cols: usize) -> Option<PgaOperation> {
    let mut m = BitMat::zeros(rows, cols);
    let mut x = seed | 1;
    for i in 0..rows {
        for j in 0..cols {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 3 == 0 {
                m.set(i, j, true);
            }
        }
    }
    let net = synthesize(&m, SynthOptions::default());
    PgaOperation::linear("rand", net, &PicogaParams::dream()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mapped_linear_ops_compute_their_matrix(seed in any::<u64>(), v_bits in any::<u64>()) {
        let Some(op) = random_linear_op(seed, 24, 40) else { return Ok(()); };
        let mut sim = PicogaSim::new(PicogaParams::dream());
        sim.load_context(0, op.clone()).unwrap();
        sim.switch_to(0).unwrap();
        let mut v = BitVec::zeros(40);
        for j in 0..40 {
            if (v_bits >> (j % 64)) & 1 == 1 {
                v.set(j, true);
            }
        }
        let got = sim.run_linear(&v).unwrap();
        prop_assert_eq!(got, op.network().to_matrix().mul_vec(&v));
    }

    #[test]
    fn placement_respects_row_capacity_and_order(seed in any::<u64>()) {
        let Some(op) = random_linear_op(seed, 20, 48) else { return Ok(()); };
        let params = PicogaParams::dream();
        let net = op.network();
        let lv = net.levels();
        let mut seen_level = 0usize;
        for row in op.placement().rows() {
            prop_assert!(row.len() <= params.usable_cells_per_row);
            for &gi in row {
                let l = lv[net.n_inputs() + gi];
                prop_assert!(l >= seen_level, "levels must not regress");
                seen_level = seen_level.max(l);
            }
        }
        prop_assert!(op.placement().row_count() <= params.rows);
    }

    #[test]
    fn wavefront_cycles_follow_closed_form(n_blocks in 1usize..40, seed in any::<u64>()) {
        // A small CRC-update op over CRC-16.
        let g = Gf2Poly::from_crc_notation(0x8005, 16);
        let a = BitMat::companion(&g);
        let mut b = BitVec::zeros(16);
        for i in 0..16 {
            if g.coeff(i) {
                b.set(i, true);
            }
        }
        let cols: Vec<BitVec> = (0..16u64).map(|j| a.pow(15 - j).mul_vec(&b)).collect();
        let net = synthesize(&BitMat::from_columns(&cols), SynthOptions::default());
        let op = PgaOperation::crc_update("u", net, &a, &PicogaParams::dream()).unwrap();
        let mut x = seed | 1;
        let blocks: Vec<BitVec> = (0..n_blocks)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                BitVec::from_u64(x, 16)
            })
            .collect();
        let trace = run_crc_wavefront(&op, &BitVec::zeros(16), &blocks);
        prop_assert_eq!(trace.cycles, op.stats().latency + n_blocks as u64 - 1);
        prop_assert_eq!(trace.completion_cycles.len(), n_blocks);
        prop_assert!(trace.max_in_flight <= op.stats().rows);
    }
}
