//! Seeded fault-injection campaigns: injection rate × M × policy.
//!
//! A campaign cell fixes a fault-injection rate, a look-ahead factor M
//! and a recovery policy, then runs independent trials. Each trial
//! builds a fresh resilient system, streams a message workload through
//! it, injects at most one random fault at a random point, and grades
//! the outcome against exact ground truth:
//!
//! * **detection coverage** — of the faults that change semantics
//!   (decided exactly by [`crate::inject::classify`]), how many did a
//!   scrub, probe or DMR comparison catch?
//! * **SDC rate** — how many trials delivered at least one wrong
//!   checksum to the caller (silent data corruption)?
//! * **throughput cost** — total cycles relative to the same workload
//!   on a fault-free system under the same policy (self-checking is
//!   not free; the ratio makes its price visible).
//!
//! Everything — workload bytes, fault choice, injection point — derives
//! from the campaign seed through [`SplitMix64`], so a report is
//! reproducible bit-for-bit from `(seed, config)`.

use crate::inject::{classify, classify_load, FaultEffect, FaultInjector};
use crate::policy::{RecoveryPolicy, ResilienceError, ResilientSystem};
use crate::rng::SplitMix64;
use dream::ControlModel;
use dream_lfsr::FlowOptions;
use lfsr::crc::{crc_bitwise, CrcSpec};
use picoga::{LoadCorruption, PicogaParams};
use std::fmt::Write as _;

/// What a campaign sweeps and how hard it works each cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every random decision derives from it.
    pub seed: u64,
    /// Look-ahead factors to sweep.
    pub ms: Vec<usize>,
    /// Labeled recovery policies to sweep.
    pub policies: Vec<(String, RecoveryPolicy)>,
    /// Per-trial fault-injection probabilities to sweep.
    pub rates: Vec<f64>,
    /// Trials per (rate, M, policy) cell.
    pub trials: usize,
    /// Messages streamed per trial.
    pub messages: usize,
    /// Message length in bytes.
    pub message_len: usize,
}

impl CampaignConfig {
    /// The default sweep: rates {0.5, 1.0} × M {32, 64} × policies
    /// {standard, detect-only, dmr}, 8 trials per cell.
    #[must_use]
    pub fn default_sweep(seed: u64) -> Self {
        CampaignConfig {
            seed,
            ms: vec![32, 64],
            policies: vec![
                ("standard".into(), RecoveryPolicy::standard()),
                ("detect-only".into(), RecoveryPolicy::detect_only()),
                ("dmr".into(), RecoveryPolicy::dmr()),
            ],
            rates: vec![0.5, 1.0],
            trials: 8,
            messages: 8,
            message_len: 32,
        }
    }

    /// A fast CI-sized campaign: one rate, one M, standard + dmr,
    /// 3 trials per cell.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            seed,
            ms: vec![32],
            policies: vec![
                ("standard".into(), RecoveryPolicy::standard()),
                ("dmr".into(), RecoveryPolicy::dmr()),
            ],
            rates: vec![1.0],
            trials: 3,
            messages: 6,
            message_len: 24,
        }
    }
}

/// Aggregated results for one (rate, M, policy) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Policy label.
    pub policy: String,
    /// Look-ahead factor.
    pub m: usize,
    /// Fault-injection probability per trial.
    pub rate: f64,
    /// Trials run.
    pub trials: usize,
    /// Trials that actually received a fault.
    pub faulted: usize,
    /// Faulted trials whose fault was semantics-changing (ground truth).
    pub semantic: usize,
    /// Semantic trials on which a detector (scrub, probe, DMR) fired.
    pub detected: usize,
    /// Trials that delivered at least one wrong checksum.
    pub sdc_trials: usize,
    /// Total wrong checksums delivered across the cell.
    pub wrong_answers: u64,
    /// Trials that ended retired to the software kernel.
    pub fallbacks: usize,
    /// Trials healed on-fabric (reload or re-synthesis).
    pub healed: usize,
    /// Total cycles across all trials, fault-free baseline.
    pub baseline_cycles: u64,
    /// Total cycles across all trials, with injection.
    pub cycles: u64,
}

impl CampaignRow {
    /// Detected fraction of semantics-changing faults (1 when none).
    #[must_use]
    pub fn detection_coverage(&self) -> f64 {
        if self.semantic == 0 {
            1.0
        } else {
            self.detected as f64 / self.semantic as f64
        }
    }

    /// Fraction of trials with silent data corruption.
    #[must_use]
    pub fn sdc_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.sdc_trials as f64 / self.trials as f64
        }
    }

    /// Cycle cost relative to the fault-free baseline (1.0 = free).
    #[must_use]
    pub fn overhead(&self) -> f64 {
        if self.baseline_cycles == 0 {
            1.0
        } else {
            self.cycles as f64 / self.baseline_cycles as f64
        }
    }
}

/// A full campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// One row per (rate, M, policy) cell, in sweep order.
    pub rows: Vec<CampaignRow>,
}

impl CampaignReport {
    /// Overall detection coverage across every cell of `policy`.
    #[must_use]
    pub fn coverage_for(&self, policy: &str) -> f64 {
        let (det, sem) = self
            .rows
            .iter()
            .filter(|r| r.policy == policy)
            .fold((0usize, 0usize), |(d, s), r| {
                (d + r.detected, s + r.semantic)
            });
        if sem == 0 {
            1.0
        } else {
            det as f64 / sem as f64
        }
    }

    /// Total wrong answers delivered across every cell of `policy`.
    #[must_use]
    pub fn wrong_answers_for(&self, policy: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.policy == policy)
            .map(|r| r.wrong_answers)
            .sum()
    }

    /// Renders the report as an aligned text table with a summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fault campaign (seed {})", self.seed);
        let _ = writeln!(
            out,
            "{:<12} {:>4} {:>5} {:>7} {:>8} {:>9} {:>9} {:>6} {:>9} {:>9}",
            "policy",
            "M",
            "rate",
            "trials",
            "semantic",
            "coverage",
            "sdc-rate",
            "wrong",
            "healed",
            "overhead"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<12} {:>4} {:>5.2} {:>7} {:>8} {:>8.1}% {:>8.1}% {:>6} {:>9} {:>8.2}x",
                r.policy,
                r.m,
                r.rate,
                r.trials,
                r.semantic,
                100.0 * r.detection_coverage(),
                100.0 * r.sdc_rate(),
                r.wrong_answers,
                r.healed,
                r.overhead(),
            );
        }
        let mut policies: Vec<&str> = Vec::new();
        for r in &self.rows {
            if !policies.contains(&r.policy.as_str()) {
                policies.push(&r.policy);
            }
        }
        let _ = writeln!(out);
        for p in policies {
            let _ = writeln!(
                out,
                "{p}: detection coverage {:.1}% of semantic faults, {} wrong answer(s) delivered",
                100.0 * self.coverage_for(p),
                self.wrong_answers_for(p),
            );
        }
        out
    }
}

/// The four fault kinds a trial can draw.
#[derive(Debug, Clone, Copy)]
enum FaultKind {
    Wire,
    Tap,
    Stuck,
    Load,
}

impl FaultKind {
    fn draw(rng: &mut SplitMix64) -> FaultKind {
        match rng.below(4) {
            0 => FaultKind::Wire,
            1 => FaultKind::Tap,
            2 => FaultKind::Stuck,
            _ => FaultKind::Load,
        }
    }
}

/// Outcome of one trial, before aggregation.
struct Trial {
    faulted: bool,
    semantic: bool,
    detected: bool,
    wrong_answers: u64,
    fell_back: bool,
    healed: bool,
    cycles: u64,
}

/// Runs the full sweep. Deterministic: the same `(config)` yields the
/// same report, bit for bit.
///
/// # Errors
///
/// Propagates build and system errors from trial construction; grading
/// itself cannot fail.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, ResilienceError> {
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").expect("catalogue entry");
    let mut master = SplitMix64::new(cfg.seed);
    let mut rows = Vec::new();
    for rate in &cfg.rates {
        for &m in &cfg.ms {
            for (label, policy) in &cfg.policies {
                let mut cell_rng = master.fork();
                let mut row = CampaignRow {
                    policy: label.clone(),
                    m,
                    rate: *rate,
                    trials: cfg.trials,
                    faulted: 0,
                    semantic: 0,
                    detected: 0,
                    sdc_trials: 0,
                    wrong_answers: 0,
                    fallbacks: 0,
                    healed: 0,
                    baseline_cycles: 0,
                    cycles: 0,
                };
                for _ in 0..cfg.trials {
                    let mut trial_rng = cell_rng.fork();
                    // Baseline first, on a clone of the trial rng: the
                    // same draw sequence yields the same workload bytes,
                    // but rate 0 means no fault is ever injected.
                    let mut baseline_rng = trial_rng.clone();
                    let base = run_trial(cfg, spec, m, *policy, 0.0, &mut baseline_rng)?;
                    row.baseline_cycles += base.cycles;
                    let t = run_trial(cfg, spec, m, *policy, *rate, &mut trial_rng)?;
                    row.faulted += usize::from(t.faulted);
                    row.semantic += usize::from(t.semantic);
                    row.detected += usize::from(t.semantic && t.detected);
                    row.sdc_trials += usize::from(t.wrong_answers > 0);
                    row.wrong_answers += t.wrong_answers;
                    row.fallbacks += usize::from(t.fell_back);
                    row.healed += usize::from(t.healed);
                    row.cycles += t.cycles;
                }
                rows.push(row);
            }
        }
    }
    Ok(CampaignReport {
        seed: cfg.seed,
        rows,
    })
}

/// One trial: build, stream, inject (maybe), grade.
fn run_trial(
    cfg: &CampaignConfig,
    spec: &CrcSpec,
    m: usize,
    policy: RecoveryPolicy,
    rate: f64,
    rng: &mut SplitMix64,
) -> Result<Trial, ResilienceError> {
    // Workload and fault script drawn up front so the faulted run and
    // any baseline re-run agree byte-for-byte.
    let messages: Vec<Vec<u8>> = (0..cfg.messages)
        .map(|_| {
            (0..cfg.message_len)
                .map(|_| (rng.next_u64() & 0xFF) as u8)
                .collect()
        })
        .collect();
    let faulted = rng.chance(rate);
    let kind = FaultKind::draw(rng);
    // Config faults need a resident context, so they land after the
    // first message at the earliest.
    let inject_at = 1 + rng.below(cfg.messages.saturating_sub(1).max(1));
    let mut injector = FaultInjector::new(rng.next_u64());

    let opts = FlowOptions::dream_with_m(m);
    let mut rs = ResilientSystem::new(PicogaParams::dream(), ControlModel::default(), policy);
    rs.host("crc", spec, opts)?;

    let start_detections = rs.system().resilience_counters().detections;
    let mut injected = false;
    let mut semantic = false;
    let mut wrong_answers: u64 = 0;
    let mut cycles: u64 = 0;

    for (i, msg) in messages.iter().enumerate() {
        if faulted && !injected && i == inject_at.min(cfg.messages - 1) && i > 0 {
            semantic = inject_one(&mut rs, kind, &mut injector);
            injected = true;
        }
        let run = rs.checksum_guarded("crc", msg)?;
        cycles += run.cycles;
        if run.crc != crc_bitwise(spec, msg) {
            wrong_answers += 1;
        }
    }
    // End-of-stream checkpoint: faults injected near the tail still get
    // their detection opportunity.
    let fab0 = rs.system().fabric().counters().total();
    let tail_outcomes = rs.self_check()?;
    cycles += rs.system().fabric().counters().total() - fab0;

    let detections = rs.system().resilience_counters().detections - start_detections;
    let detected = detections > 0 || rs.dmr_mismatches() > 0;
    let fell_back = rs
        .hosted()
        .iter()
        .any(|n| rs.system().health(n) == dream::Health::Fallback);
    let healed = !fell_back
        && detected
        && rs
            .hosted()
            .iter()
            .all(|n| rs.system().health(n) == dream::Health::Healthy);
    let _ = tail_outcomes;

    Ok(Trial {
        faulted: injected,
        semantic,
        detected,
        wrong_answers,
        fell_back,
        healed,
        cycles,
    })
}

/// Injects one fault of `kind` into the trial system. Returns the exact
/// ground truth: does the fault change the semantics of any resident
/// operation?
fn inject_one(rs: &mut ResilientSystem, kind: FaultKind, injector: &mut FaultInjector) -> bool {
    // Resident contexts of the primary personality (update + finalize
    // when present). Ground truth must consider every operation the
    // fault can reach, not just the one it was shaped for.
    let residents: Vec<(usize, picoga::PgaOperation)> = [0u8, 1]
        .iter()
        .filter_map(|&role| rs.system().slot_of("crc", role))
        .filter_map(|slot| {
            rs.system()
                .fabric()
                .context(slot)
                .map(|op| (slot, op.clone()))
        })
        .collect();
    let Some((slot, op)) = residents.first().cloned() else {
        return false;
    };
    match kind {
        FaultKind::Wire => {
            let Some(f) = injector.random_wire_flip(slot, &op) else {
                return false;
            };
            let sem = classify(&f, &op) == FaultEffect::Semantic;
            let _ = rs.system_mut().fabric_mut().inject(&f);
            sem
        }
        FaultKind::Tap => {
            let Some(f) = injector.random_tap_flip(slot, &op) else {
                return false;
            };
            let sem = classify(&f, &op) == FaultEffect::Semantic;
            let _ = rs.system_mut().fabric_mut().inject(&f);
            sem
        }
        FaultKind::Stuck => {
            let Some(f) = injector.random_stuck_cell(&op) else {
                return false;
            };
            // A stuck cell is physical: it can disturb *every* resident
            // placement that uses the cell, so ground truth is the OR
            // over all of them.
            let sem = residents
                .iter()
                .any(|(_, o)| classify(&f, o) == FaultEffect::Semantic);
            let _ = rs.system_mut().fabric_mut().inject(&f);
            sem
        }
        FaultKind::Load => {
            // Corrupt the next off-fabric load: evict the personality so
            // a load must happen, and arm the corruption against it.
            let Some(fault) = injector.random_load_fault(rs.system().fabric().loads_seen(), &op)
            else {
                return false;
            };
            let sem = classify_load(&fault.fault, &op) == FaultEffect::Semantic;
            rs.system_mut().evict("crc");
            let next_load = rs.system().fabric().loads_seen();
            rs.system_mut()
                .fabric_mut()
                .arm_load_corruption(LoadCorruption {
                    load_index: next_load,
                    fault: fault.fault,
                });
            sem
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_is_deterministic() {
        let cfg = CampaignConfig::smoke(0xC0FFEE);
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a, b, "same seed, same report");
        assert!(!a.rows.is_empty());
        let rendered = a.render();
        assert!(rendered.contains("fault campaign (seed"));
    }

    #[test]
    fn smoke_campaign_detects_semantic_faults_and_dmr_has_no_sdc() {
        let cfg = CampaignConfig::smoke(2024);
        let rep = run_campaign(&cfg).unwrap();
        // Standard policy: every semantics-changing fault detected.
        assert!(
            rep.coverage_for("standard") >= 0.99,
            "coverage {:.3}",
            rep.coverage_for("standard")
        );
        // DMR: zero wrong answers delivered, ever.
        assert_eq!(rep.wrong_answers_for("dmr"), 0, "DMR means zero SDC");
    }
}
