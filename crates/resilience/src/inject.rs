//! Seeded fault generation with exact ground-truth classification.
//!
//! A campaign needs two things from its injector: **valid coordinates**
//! (a fault must address a gate/pin/tap/cell that exists, or it lands in
//! configuration padding and proves nothing) and **ground truth** (did
//! this fault change the computed function, or did it flip a don't-care
//! bit?). Both are decidable exactly here because the fabric operations
//! are linear: a corrupted network still computes an affine function
//! `y = M'·x ⊕ b`, and the fault is *semantic* iff `(M', b)` differs
//! from the pristine `(M, 0)`. No sampling, no false ground truth.

use gf2::BitVec;
use picoga::{ConfigFault, LoadCorruption, LoadFault, PgaOperation};

use crate::rng::SplitMix64;

/// Ground truth for one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEffect {
    /// The operation computes a different function: every undetected
    /// wrong answer it produces is silent data corruption.
    Semantic,
    /// The function is unchanged (redirected wire cancels, dead gate,
    /// unused cell): no detector can or should fire.
    Benign,
}

/// Seeded generator of valid fabric faults.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
}

impl FaultInjector {
    /// An injector whose whole fault sequence is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: SplitMix64::new(seed),
        }
    }

    /// A random SEU wire flip in `op` resident in `slot`: an existing
    /// gate pin redirected to a different (earlier) signal. `None` when
    /// the network has no gates to corrupt.
    pub fn random_wire_flip(&mut self, slot: usize, op: &PgaOperation) -> Option<ConfigFault> {
        let net = op.network();
        if net.gate_count() == 0 {
            return None;
        }
        for _ in 0..64 {
            let gate = self.rng.below(net.gate_count());
            let pins = net.gates()[gate].inputs.len();
            if pins == 0 {
                continue;
            }
            let pin = self.rng.below(pins);
            let new_signal = self.rng.below(net.n_inputs() + gate);
            if net.gates()[gate].inputs[pin] != new_signal {
                return Some(ConfigFault::WireFlip {
                    slot,
                    gate,
                    pin,
                    new_signal,
                });
            }
        }
        None
    }

    /// A random SEU tap flip: one primary output re-tapped to a
    /// different signal (or to constant 0).
    pub fn random_tap_flip(&mut self, slot: usize, op: &PgaOperation) -> Option<ConfigFault> {
        let net = op.network();
        if net.outputs().is_empty() {
            return None;
        }
        for _ in 0..64 {
            let output = self.rng.below(net.outputs().len());
            let new_tap = if self.rng.chance(0.25) {
                None
            } else {
                Some(self.rng.below(net.n_signals()))
            };
            if net.outputs()[output] != new_tap {
                return Some(ConfigFault::TapFlip {
                    slot,
                    output,
                    new_tap,
                });
            }
        }
        None
    }

    /// A random stuck-at fault on a cell the operation's placement
    /// actually occupies (faults on unused cells are trivially benign
    /// and would only dilute a campaign). `None` for empty placements.
    pub fn random_stuck_cell(&mut self, op: &PgaOperation) -> Option<ConfigFault> {
        let rows = op.placement().rows();
        let total: usize = rows.iter().map(Vec::len).sum();
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.below(total);
        for (row, r) in rows.iter().enumerate() {
            if pick < r.len() {
                return Some(ConfigFault::StuckCell {
                    row,
                    cell: pick,
                    value: self.rng.chance(0.5),
                });
            }
            pick -= r.len();
        }
        None
    }

    /// A random corruption armed against context load `load_index`,
    /// shaped to fit `op` (the operation that load delivers).
    pub fn random_load_fault(
        &mut self,
        load_index: u64,
        op: &PgaOperation,
    ) -> Option<LoadCorruption> {
        // Reuse the wire-flip generator; slot is irrelevant for loads.
        let fault = self.random_wire_flip(0, op)?;
        let ConfigFault::WireFlip {
            gate,
            pin,
            new_signal,
            ..
        } = fault
        else {
            return None;
        };
        Some(LoadCorruption {
            load_index,
            fault: LoadFault::WireFlip {
                gate,
                pin,
                new_signal,
            },
        })
    }

    /// Direct access to the underlying stream (for campaign-level
    /// decisions that must come from the same seed).
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.rng
    }
}

/// Affine summary of every signal in a network, optionally with one
/// gate's value forced: `(support over primary inputs, constant term)`.
fn affine_outputs(op: &PgaOperation, forced: Option<(usize, bool)>) -> Vec<(BitVec, bool)> {
    let net = op.network();
    let n = net.n_inputs();
    let mut sig: Vec<(BitVec, bool)> = Vec::with_capacity(net.n_signals());
    for i in 0..n {
        sig.push((BitVec::unit(i, n), false));
    }
    for (g, gate) in net.gates().iter().enumerate() {
        if let Some((fg, v)) = forced {
            if fg == g {
                sig.push((BitVec::zeros(n), v));
                continue;
            }
        }
        let mut support = BitVec::zeros(n);
        let mut konst = false;
        for &s in &gate.inputs {
            support.xor_assign(&sig[s].0);
            konst ^= sig[s].1;
        }
        sig.push((support, konst));
    }
    net.outputs()
        .iter()
        .map(|o| match o {
            Some(s) => sig[*s].clone(),
            None => (BitVec::zeros(n), false),
        })
        .collect()
}

/// Exact ground truth for a configuration fault against the pristine
/// operation: applies the fault to a copy and compares affine behaviour.
/// Faults with invalid coordinates are reported benign (they landed in
/// configuration padding).
#[must_use]
pub fn classify(fault: &ConfigFault, pristine: &PgaOperation) -> FaultEffect {
    match *fault {
        ConfigFault::WireFlip {
            gate,
            pin,
            new_signal,
            ..
        } => {
            let mut probe = pristine.clone();
            if probe.corrupt_wire(gate, pin, new_signal).is_err() {
                return FaultEffect::Benign;
            }
            if probe.network().to_matrix() == pristine.network().to_matrix() {
                FaultEffect::Benign
            } else {
                FaultEffect::Semantic
            }
        }
        ConfigFault::TapFlip {
            output, new_tap, ..
        } => {
            let mut probe = pristine.clone();
            if probe.corrupt_output_tap(output, new_tap).is_err() {
                return FaultEffect::Benign;
            }
            if probe.network().to_matrix() == pristine.network().to_matrix() {
                FaultEffect::Benign
            } else {
                FaultEffect::Semantic
            }
        }
        ConfigFault::StuckCell { row, cell, value } => {
            let Some(&gate) = pristine
                .placement()
                .rows()
                .get(row)
                .and_then(|r| r.get(cell))
            else {
                return FaultEffect::Benign;
            };
            let clean = affine_outputs(pristine, None);
            let stuck = affine_outputs(pristine, Some((gate, value)));
            if clean == stuck {
                FaultEffect::Benign
            } else {
                FaultEffect::Semantic
            }
        }
    }
}

/// Ground truth for a load-time corruption of `op`.
#[must_use]
pub fn classify_load(fault: &LoadFault, pristine: &PgaOperation) -> FaultEffect {
    let as_config = match *fault {
        LoadFault::WireFlip {
            gate,
            pin,
            new_signal,
        } => ConfigFault::WireFlip {
            slot: 0,
            gate,
            pin,
            new_signal,
        },
        LoadFault::TapFlip { output, new_tap } => ConfigFault::TapFlip {
            slot: 0,
            output,
            new_tap,
        },
    };
    classify(&as_config, pristine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{BitMat, Gf2Poly};
    use picoga::PicogaParams;
    use xornet::{synthesize, SynthOptions};

    fn op() -> PgaOperation {
        let t = BitMat::companion(&Gf2Poly::from_crc_notation(0x1021, 16)).pow(9);
        let net = synthesize(&t, SynthOptions::default());
        PgaOperation::linear("T", net, &PicogaParams::dream()).unwrap()
    }

    #[test]
    fn injector_is_deterministic_and_produces_valid_faults() {
        let op = op();
        let mut a = FaultInjector::new(99);
        let mut b = FaultInjector::new(99);
        for _ in 0..20 {
            let fa = a.random_wire_flip(0, &op).unwrap();
            let fb = b.random_wire_flip(0, &op).unwrap();
            assert_eq!(fa, fb, "same seed, same faults");
            // Valid coordinates: applying to a copy must succeed.
            let mut probe = op.clone();
            let ConfigFault::WireFlip {
                gate,
                pin,
                new_signal,
                ..
            } = fa
            else {
                panic!("wire flip expected")
            };
            probe.corrupt_wire(gate, pin, new_signal).unwrap();
        }
    }

    #[test]
    fn stuck_cell_classification_matches_simulation() {
        // Ground truth must agree with what the simulator computes: for
        // a sample of stuck faults, classify() says Semantic iff some
        // basis input produces a different run_linear result.
        use gf2::BitVec;
        use picoga::PicogaSim;
        let op = op();
        let mut inj = FaultInjector::new(5);
        let mut checked_semantic = 0;
        let mut checked_benign = 0;
        for _ in 0..24 {
            let fault = inj.random_stuck_cell(&op).unwrap();
            let mut sim = PicogaSim::new(PicogaParams::dream());
            sim.load_context(0, op.clone()).unwrap();
            sim.switch_to(0).unwrap();
            sim.inject(&fault).unwrap();
            let n = op.network().n_inputs();
            let mut differs = false;
            for j in 0..n {
                let x = BitVec::unit(j, n);
                if sim.run_linear(&x).unwrap() != op.network().to_matrix().mul_vec(&x) {
                    differs = true;
                }
            }
            // Affine faults also show at x = 0 (constant term).
            if !sim.run_linear(&BitVec::zeros(n)).unwrap().is_zero() {
                differs = true;
            }
            let expected = if differs {
                FaultEffect::Semantic
            } else {
                FaultEffect::Benign
            };
            assert_eq!(classify(&fault, &op), expected, "{fault:?}");
            match expected {
                FaultEffect::Semantic => checked_semantic += 1,
                FaultEffect::Benign => checked_benign += 1,
            }
        }
        assert!(checked_semantic > 0, "sample must include semantic faults");
        // Benign stuck cells are rare on a live network but possible;
        // nothing to assert about their count.
        let _ = checked_benign;
    }

    #[test]
    fn wire_flip_classification_is_exact() {
        let op = op();
        let mut inj = FaultInjector::new(11);
        let mut semantic = 0;
        for _ in 0..32 {
            let f = inj.random_wire_flip(0, &op).unwrap();
            if classify(&f, &op) == FaultEffect::Semantic {
                semantic += 1;
                // A semantic flip must change the matrix.
                let ConfigFault::WireFlip {
                    gate,
                    pin,
                    new_signal,
                    ..
                } = f
                else {
                    unreachable!()
                };
                let mut probe = op.clone();
                probe.corrupt_wire(gate, pin, new_signal).unwrap();
                assert_ne!(probe.network().to_matrix(), op.network().to_matrix());
            }
        }
        assert!(
            semantic > 16,
            "most random flips on a live net are semantic"
        );
    }
}
