//! # resilience — fault injection, self-checking and graceful degradation
//!
//! The paper's DREAM/PiCoGA stack answers "how fast can a reconfigurable
//! fabric run parallel LFSR applications?"; this crate answers the
//! follow-on question a deployed device faces: **what happens when the
//! configuration underneath those applications breaks?** SRAM-based
//! configuration memory is susceptible to single-event upsets, off-fabric
//! context loads can be corrupted in transit, and cells can fail stuck.
//!
//! Three layers (see DESIGN.md §7):
//!
//! * [`inject`] — seeded, deterministic generation of valid fabric
//!   faults, with *exact* ground-truth classification (semantic vs
//!   benign) computed from the affine behaviour of the corrupted
//!   network. The mechanisms live in `picoga` ([`picoga::ConfigFault`],
//!   [`picoga::FaultPlan`]); this layer adds randomness and truth.
//! * [`policy`] — [`policy::ResilientSystem`] wraps `dream::DreamSystem`
//!   with a typed recovery ladder (reload → re-synthesize → software
//!   fallback) and an optional dual-lane DMR mode.
//! * [`campaign`] — reproducible sweeps over injection rate × M ×
//!   policy, grading detection coverage, silent-data-corruption rate and
//!   throughput cost against the fault-free baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod inject;
pub mod policy;
pub mod rng;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CampaignRow};
pub use inject::{classify, classify_load, FaultEffect, FaultInjector};
pub use policy::{
    shadow_name, FabricHealthSummary, GuardedRun, MigrationAdvice, RecoveryOutcome, RecoveryPolicy,
    ResilienceError, ResilientSystem,
};
pub use rng::SplitMix64;
