//! Typed recovery policy and the resilient system wrapper.
//!
//! [`DreamSystem`] exposes the *mechanisms* (scrub, probe, reload,
//! replace, software checksum); this module is the *policy* that drives
//! them as a ladder:
//!
//! 1. **Reload** — a bounded number of context reloads from pristine
//!    off-fabric configuration memory. Heals SEUs in resident contexts
//!    and load-time corruption; cannot heal physical stuck-at cells.
//! 2. **Re-synthesis** — rebuild the personality through the full flow
//!    with perturbed synthesis options, yielding a different network and
//!    placement that can route around a stuck cell.
//! 3. **Software fallback** — retire the personality to the control
//!    processor's Sarwate kernel. Always correct, never fast.
//!
//! The optional **DMR mode** hosts a second, independently synthesized
//! placement of every personality and compares the two lanes on every
//! message: any disagreement is detected *before* the answer is
//! delivered, which is what drives the campaign's zero-SDC result.
//!
//! Scrambler personalities keep their `DreamSystem`-level mechanisms
//! (scrub/probe/reload); the wrapper here hosts CRC personalities, the
//! only kind with a software fallback kernel.

use dream::{ControlModel, DreamSystem, Health, RunReport, SystemError};
use dream_lfsr::{build_personality, FlowOptions};
use lfsr::crc::CrcSpec;
use obs::{EventKind, SpanCtx};
use picoga::PicogaParams;
use std::collections::HashMap;
use std::fmt;

/// Suffix appended to a personality name for its DMR shadow lane.
pub const DMR_SUFFIX: &str = "::dmr";

/// The shadow-lane name for `name` in DMR mode.
#[must_use]
pub fn shadow_name(name: &str) -> String {
    format!("{name}{DMR_SUFFIX}")
}

/// How far the system may go to keep a personality serviceable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Context reloads attempted before escalating (step 1 of the
    /// ladder). 0 skips straight to re-synthesis.
    pub max_reload_retries: u32,
    /// Permit step 2: re-synthesize with perturbed options and replace
    /// the registration.
    pub allow_resynthesis: bool,
    /// Permit step 3: retire the personality to the software kernel.
    pub allow_software_fallback: bool,
    /// Known-answer blocks pushed through the datapath per probe.
    pub probe_blocks: usize,
    /// Run a scrub + probe checkpoint every this many messages
    /// (0 disables periodic checking — detection then rests on DMR).
    pub scrub_period: u64,
    /// Host a second placement of every personality and compare lanes
    /// on every message.
    pub dmr: bool,
    /// The checkpoint-migrate rung: when every permitted repair step
    /// fails (or software fallback is disallowed), report
    /// [`RecoveryOutcome::CheckpointPark`] instead of
    /// [`RecoveryOutcome::Unrecovered`]. The personality still serves
    /// nothing, but a stream-serving layer is told to checkpoint its
    /// live sessions and park them for later resumption rather than
    /// dropping them (see [`RecoveryOutcome::migration_advice`]).
    pub park_streams: bool,
}

impl RecoveryPolicy {
    /// The default ladder: 2 reload retries, re-synthesis, software
    /// fallback, checkpoint every 4 messages, no DMR.
    #[must_use]
    pub fn standard() -> Self {
        RecoveryPolicy {
            max_reload_retries: 2,
            allow_resynthesis: true,
            allow_software_fallback: true,
            probe_blocks: 2,
            scrub_period: 4,
            dmr: false,
            park_streams: false,
        }
    }

    /// Detection without repair: checkpoints run, but nothing is
    /// reloaded, replaced or retired. The campaign's control arm.
    #[must_use]
    pub fn detect_only() -> Self {
        RecoveryPolicy {
            max_reload_retries: 0,
            allow_resynthesis: false,
            allow_software_fallback: false,
            ..Self::standard()
        }
    }

    /// The standard ladder plus dual-lane modular redundancy.
    #[must_use]
    pub fn dmr() -> Self {
        RecoveryPolicy {
            dmr: true,
            ..Self::standard()
        }
    }

    /// The ladder tuned for a stream-serving layer: the full repair
    /// sequence, plus the checkpoint-migrate rung so live sessions are
    /// parked (never dropped) when a lane cannot be repaired in place.
    #[must_use]
    pub fn stream_serving() -> Self {
        RecoveryPolicy {
            park_streams: true,
            ..Self::standard()
        }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// What the recovery ladder achieved for one personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// A context reload restored correct behaviour.
    HealedByReload {
        /// Reload attempts spent (1-based).
        retries: u32,
    },
    /// A re-synthesized replacement placement restored correct
    /// behaviour (typical for stuck-at cells).
    HealedByResynthesis,
    /// The personality now runs on the control processor's software
    /// kernel.
    SoftwareFallback,
    /// The checkpoint-migrate rung ([`RecoveryPolicy::park_streams`]):
    /// no repair step succeeded, so a serving layer should checkpoint
    /// the personality's live streams and park them until the lane is
    /// replaced.
    CheckpointPark,
    /// Every permitted step failed or was disallowed; the personality
    /// stays suspect on the fabric.
    Unrecovered,
}

/// What a stream-serving layer should do with the live sessions of a
/// personality after the recovery ladder ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationAdvice {
    /// The lane is healthy again (reload or re-synthesis); transformed
    /// stream states remain valid because re-synthesis preserves the
    /// Derby transform for a given spec and M — keep feeding the fabric.
    StayFabric,
    /// The personality retired to the software kernel: marshal each
    /// session's state out of the transformed space (T · x_t) and
    /// continue on the Sarwate path.
    MarshalToSoftware,
    /// Nothing can serve this personality right now: checkpoint each
    /// session and park it for later restoration.
    Park,
}

impl RecoveryOutcome {
    /// The stream-migration consequence of this outcome.
    #[must_use]
    pub fn migration_advice(&self) -> MigrationAdvice {
        match self {
            RecoveryOutcome::HealedByReload { .. } | RecoveryOutcome::HealedByResynthesis => {
                MigrationAdvice::StayFabric
            }
            RecoveryOutcome::SoftwareFallback => MigrationAdvice::MarshalToSoftware,
            RecoveryOutcome::CheckpointPark | RecoveryOutcome::Unrecovered => MigrationAdvice::Park,
        }
    }
}

/// Errors from hosting or recovering personalities.
#[derive(Debug)]
pub enum ResilienceError {
    /// The synthesis flow failed to (re)build a personality.
    Build(dream::BuildError),
    /// The underlying system refused an operation.
    System(SystemError),
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Build(e) => write!(f, "personality build failed: {e}"),
            ResilienceError::System(e) => write!(f, "system error: {e}"),
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Build(e) => Some(e),
            ResilienceError::System(e) => Some(e),
        }
    }
}

impl From<dream::BuildError> for ResilienceError {
    fn from(e: dream::BuildError) -> Self {
        ResilienceError::Build(e)
    }
}

impl From<SystemError> for ResilienceError {
    fn from(e: SystemError) -> Self {
        ResilienceError::System(e)
    }
}

/// One guarded checksum: the answer plus everything it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedRun {
    /// The CRC value delivered to the caller.
    pub crc: u64,
    /// Total cycles spent by this call: fabric work (compute, context
    /// switches, loads, probes, reloads) plus control/tail/stall cycles
    /// of every kernel invoked.
    pub cycles: u64,
    /// The delivered answer came from the software kernel.
    pub software: bool,
    /// DMR lanes disagreed on this message (the answer was then taken
    /// from software, so it is still correct).
    pub dmr_mismatch: bool,
    /// Recovery ladders run during this call (checkpoint- or
    /// DMR-triggered), in execution order.
    pub outcomes: Vec<RecoveryOutcome>,
}

/// A [`DreamSystem`] wrapped with a [`RecoveryPolicy`]: hosts CRC
/// personalities, self-checks them periodically, and walks the recovery
/// ladder when a check fails.
#[derive(Debug)]
pub struct ResilientSystem {
    sys: DreamSystem,
    policy: RecoveryPolicy,
    /// Per-personality flow inputs, kept for re-synthesis.
    flows: HashMap<String, (CrcSpec, FlowOptions)>,
    /// Hosting order — used instead of map iteration so checkpoint
    /// order (and therefore every campaign) is deterministic.
    order: Vec<String>,
    messages_seen: u64,
    dmr_mismatches: u64,
    /// Handles into the fabric's unified metrics registry.
    ids: ResIds,
}

/// Coarse per-fabric health, aggregated from lane health and the
/// recovery ladder's terminal counters (see
/// [`ResilientSystem::health_summary`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricHealthSummary {
    /// Every hosted lane (shadow lanes included) with its health.
    pub lanes: Vec<(String, Health)>,
    /// Lanes retired to the software kernel.
    pub fallback: usize,
    /// Lanes with an outstanding detection.
    pub suspect: usize,
    /// Recovery-ladder runs that ended [`RecoveryOutcome::Unrecovered`].
    pub unrecovered: u64,
    /// Recovery-ladder runs started (any outcome).
    pub recoveries: u64,
}

impl FabricHealthSummary {
    /// `true` when no hosted lane still runs on the fabric — every lane
    /// is in software fallback or suspect. An empty fabric (nothing
    /// hosted) is *not* degraded.
    #[must_use]
    pub fn fabric_abandoned(&self) -> bool {
        !self.lanes.is_empty() && self.fallback + self.suspect == self.lanes.len()
    }
}

/// Registry handles for the recovery ladder's metrics.
#[derive(Debug, Clone, Copy)]
struct ResIds {
    recoveries: obs::CounterId,
    healed_reload: obs::CounterId,
    healed_resynthesis: obs::CounterId,
    software_fallbacks: obs::CounterId,
    parked: obs::CounterId,
    unrecovered: obs::CounterId,
    recovery_cycles: obs::HistogramId,
}

impl ResIds {
    fn register(reg: &mut obs::MetricsRegistry) -> Self {
        ResIds {
            recoveries: reg.counter("resilience.recoveries"),
            healed_reload: reg.counter("resilience.healed_reload"),
            healed_resynthesis: reg.counter("resilience.healed_resynthesis"),
            software_fallbacks: reg.counter("resilience.software_fallbacks"),
            parked: reg.counter("resilience.parked"),
            unrecovered: reg.counter("resilience.unrecovered"),
            recovery_cycles: reg.histogram(
                "resilience.recovery_cycles",
                &obs::Histogram::pow2_bounds(24),
            ),
        }
    }
}

impl ResilientSystem {
    /// An empty resilient system on the given fabric.
    #[must_use]
    pub fn new(params: PicogaParams, control: ControlModel, policy: RecoveryPolicy) -> Self {
        let mut sys = DreamSystem::new(params, control);
        let ids = ResIds::register(&mut sys.obs_mut().registry);
        ResilientSystem {
            sys,
            policy,
            flows: HashMap::new(),
            order: Vec::new(),
            messages_seen: 0,
            dmr_mismatches: 0,
            ids,
        }
    }

    /// The wrapped system (counters, health, fabric access).
    pub fn system(&self) -> &DreamSystem {
        &self.sys
    }

    /// Mutable access to the wrapped system, e.g. for fault injection.
    pub fn system_mut(&mut self) -> &mut DreamSystem {
        &mut self.sys
    }

    /// The observability hub (delegates through the wrapped system).
    pub fn obs(&self) -> &obs::ObsHub {
        self.sys.obs()
    }

    /// Mutable observability hub access, for layers stacked on top.
    pub fn obs_mut(&mut self) -> &mut obs::ObsHub {
        self.sys.obs_mut()
    }

    /// The active policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Messages on which the two DMR lanes disagreed so far.
    pub fn dmr_mismatches(&self) -> u64 {
        self.dmr_mismatches
    }

    /// Personalities hosted through this wrapper, in hosting order
    /// (shadow lanes included).
    pub fn hosted(&self) -> &[String] {
        &self.order
    }

    /// A coarse health summary of every hosted lane plus the ladder's
    /// terminal-outcome counters — the signal a cluster-level shard
    /// health monitor aggregates to decide whether an entire fabric
    /// should be declared dead (all lanes off the fabric, or recoveries
    /// that ended unrecovered).
    #[must_use]
    pub fn health_summary(&self) -> FabricHealthSummary {
        let mut lanes = Vec::with_capacity(self.order.len());
        let (mut fallback, mut suspect) = (0usize, 0usize);
        for name in &self.order {
            let h = self.sys.health(name);
            match h {
                Health::Fallback => fallback += 1,
                Health::Suspect => suspect += 1,
                _ => {}
            }
            lanes.push((name.clone(), h));
        }
        let reg = &self.sys.obs().registry;
        FabricHealthSummary {
            lanes,
            fallback,
            suspect,
            unrecovered: reg.counter_value(self.ids.unrecovered),
            recoveries: reg.counter_value(self.ids.recoveries),
        }
    }

    /// Builds `spec` through the flow and registers it under `name`; in
    /// DMR mode also builds and registers an independently synthesized
    /// shadow lane.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Build`] if synthesis fails,
    /// [`ResilienceError::System`] if registration is refused.
    pub fn host(
        &mut self,
        name: &str,
        spec: &CrcSpec,
        opts: FlowOptions,
    ) -> Result<(), ResilienceError> {
        let p = build_personality(name.to_string(), spec, &opts)?;
        self.sys.register(p)?;
        self.flows.insert(name.to_string(), (*spec, opts));
        self.order.push(name.to_string());
        if self.policy.dmr {
            let sh = shadow_name(name);
            let mut sopts = opts;
            // A genuinely different placement: toggle pattern sharing so
            // the shadow network is synthesized down a different path.
            sopts.synth.share_patterns = !sopts.synth.share_patterns;
            let p2 = build_personality(sh.clone(), spec, &sopts)?;
            self.sys.register(p2)?;
            self.flows.insert(sh.clone(), (*spec, sopts));
            self.order.push(sh);
        }
        Ok(())
    }

    /// Computes a checksum under the policy: DMR lane comparison when
    /// enabled, software kernel for retired personalities, and a
    /// scrub + probe checkpoint every `scrub_period` messages (after the
    /// answer — detection latency is real).
    ///
    /// # Errors
    ///
    /// Propagates system and re-synthesis errors; unknown names surface
    /// as [`SystemError::UnknownPersonality`].
    pub fn checksum_guarded(
        &mut self,
        name: &str,
        data: &[u8],
    ) -> Result<GuardedRun, ResilienceError> {
        let fab0 = self.sys.fabric().counters().total();
        let mut soft_cycles: u64 = 0;
        let mut outcomes = Vec::new();
        let mut dmr_mismatch = false;

        let mut software = self.sys.health(name) == Health::Fallback;
        let shadow = shadow_name(name);
        let crc = if software {
            let (v, rep) = self.sys.checksum_software(name, data)?;
            soft_cycles += non_fabric(&rep);
            v
        } else if self.policy.dmr && self.flows.contains_key(&shadow) {
            let (a, ra) = self.sys.checksum(name, data)?;
            soft_cycles += non_fabric(&ra);
            let (b, rb) = if self.sys.health(&shadow) == Health::Fallback {
                self.sys.checksum_software(&shadow, data)?
            } else {
                self.sys.checksum(&shadow, data)?
            };
            soft_cycles += non_fabric(&rb);
            if a == b {
                a
            } else {
                dmr_mismatch = true;
                self.dmr_mismatches += 1;
                self.sys.set_health(name, Health::Suspect);
                self.sys.set_health(&shadow, Health::Suspect);
                outcomes.push(self.recover(name)?);
                outcomes.push(self.recover(&shadow)?);
                // The lanes disagreed, so neither can be trusted for
                // this message: answer from the software kernel.
                let (v, rep) = self.sys.checksum_software(name, data)?;
                soft_cycles += non_fabric(&rep);
                software = true;
                v
            }
        } else {
            let (v, rep) = self.sys.checksum(name, data)?;
            soft_cycles += non_fabric(&rep);
            v
        };

        self.messages_seen += 1;
        if self.policy.scrub_period > 0
            && self.messages_seen.is_multiple_of(self.policy.scrub_period)
        {
            outcomes.extend(self.self_check()?);
        }

        let cycles = self.sys.fabric().counters().total() - fab0 + soft_cycles;
        Ok(GuardedRun {
            crc,
            cycles,
            software,
            dmr_mismatch,
            outcomes,
        })
    }

    /// One checkpoint: scrub every resident context, probe every hosted
    /// fabric personality, and run the recovery ladder for whatever was
    /// flagged. Returns the ladder outcomes (empty when all clean).
    ///
    /// # Errors
    ///
    /// Propagates system and re-synthesis errors.
    pub fn self_check(&mut self) -> Result<Vec<RecoveryOutcome>, ResilienceError> {
        let mut flagged: Vec<String> = self
            .sys
            .scrub()
            .into_iter()
            .map(|f| f.personality)
            .collect();
        let hosted = self.order.clone();
        for name in hosted {
            if self.sys.health(&name) == Health::Fallback {
                continue;
            }
            if !self.sys.probe(&name, self.policy.probe_blocks.max(1))? {
                flagged.push(name);
            }
        }
        flagged.dedup();
        let mut outcomes = Vec::new();
        let mut done: Vec<String> = Vec::new();
        for name in flagged {
            if done.contains(&name) || self.sys.health(&name) == Health::Fallback {
                continue;
            }
            outcomes.push(self.recover(&name)?);
            done.push(name);
        }
        Ok(outcomes)
    }

    /// Walks the recovery ladder for `name` until a step restores a
    /// clean scrub + probe, or the permitted steps run out.
    ///
    /// # Errors
    ///
    /// Propagates system errors (including unknown personalities).
    pub fn recover(&mut self, name: &str) -> Result<RecoveryOutcome, ResilienceError> {
        let hub = self.sys.obs_mut();
        let t0 = hub.now_cycles();
        // One causal span per ladder run: its duration is the ladder
        // latency, its outcome the rung that ended the walk.
        let span = hub
            .tracer
            .begin_span(t0, "recovery_ladder", SpanCtx::default());
        hub.tracer
            .record_in_span(t0, span, None, Some(name), EventKind::RecoveryStart);
        let outcome = self.recover_ladder(name)?;
        let ids = self.ids;
        let hub = self.sys.obs_mut();
        let latency = hub.now_cycles().saturating_sub(t0);
        hub.registry.inc(ids.recoveries);
        hub.registry.observe(ids.recovery_cycles, latency);
        let (label, counter) = match outcome {
            RecoveryOutcome::HealedByReload { .. } => ("healed_reload", ids.healed_reload),
            RecoveryOutcome::HealedByResynthesis => ("healed_resynthesis", ids.healed_resynthesis),
            RecoveryOutcome::SoftwareFallback => ("software_fallback", ids.software_fallbacks),
            RecoveryOutcome::CheckpointPark => ("checkpoint_park", ids.parked),
            RecoveryOutcome::Unrecovered => ("unrecovered", ids.unrecovered),
        };
        hub.registry.inc(counter);
        let t1 = hub.now_cycles();
        hub.tracer.record_in_span(
            t1,
            span,
            None,
            Some(name),
            EventKind::RecoveryOutcome { outcome: label },
        );
        hub.tracer.end_span(t1, span, label);
        Ok(outcome)
    }

    /// The ladder itself: reload retries, then re-synthesis, then the
    /// policy's terminal rung.
    fn recover_ladder(&mut self, name: &str) -> Result<RecoveryOutcome, ResilienceError> {
        for retry in 1..=self.policy.max_reload_retries {
            self.sys.reload(name)?;
            if self.lane_clean(name)? {
                self.sys.set_health(name, Health::Healthy);
                return Ok(RecoveryOutcome::HealedByReload { retries: retry });
            }
        }
        if self.policy.allow_resynthesis {
            if let Some((spec, mut opts)) = self.flows.get(name).copied() {
                // Perturb along two axes: toggling pattern sharing alone
                // would make a recovered DMR lane identical to its
                // partner (same options, same placement), and two
                // identical placements over the same stuck cell fail
                // identically — the comparison would go blind. Shrinking
                // the fan-in as well keeps every replacement distinct
                // from both the failed placement and the other lane.
                opts.synth.share_patterns = !opts.synth.share_patterns;
                opts.synth.max_fanin = (opts.synth.max_fanin - 1).max(2);
                if let Ok(p) = build_personality(name.to_string(), &spec, &opts) {
                    self.sys.replace_personality(p)?;
                    self.flows.insert(name.to_string(), (spec, opts));
                    if self.lane_clean(name)? {
                        self.sys.set_health(name, Health::Healthy);
                        return Ok(RecoveryOutcome::HealedByResynthesis);
                    }
                }
            }
        }
        if self.policy.allow_software_fallback {
            self.sys.set_health(name, Health::Fallback);
            return Ok(RecoveryOutcome::SoftwareFallback);
        }
        self.sys.set_health(name, Health::Suspect);
        if self.policy.park_streams {
            return Ok(RecoveryOutcome::CheckpointPark);
        }
        Ok(RecoveryOutcome::Unrecovered)
    }

    /// Scrub shows no finding for `name`, the affine-complete datapath
    /// sweep passes, and a fresh known-answer probe passes.
    ///
    /// The datapath sweep is what makes a rung's "healed" verdict
    /// trustworthy: a reload fixes configuration upsets but not
    /// stuck-at cells, and a sampled probe can miss a stuck cell that
    /// live traffic would excite — the sweep cannot.
    ///
    /// The sweep itself is guarded by the lane's static linearity
    /// certificate: `datapath_probe` returns
    /// [`SystemError::ProbeUnsound`] for a personality the `analyze`
    /// prover could not show affine, and that error propagates out of
    /// the whole recovery ladder via `?` — a lane whose health cannot
    /// be soundly decided must never be declared healed.
    fn lane_clean(&mut self, name: &str) -> Result<bool, SystemError> {
        if self.sys.scrub().iter().any(|f| f.personality == name) {
            return Ok(false);
        }
        if !self.sys.datapath_probe(name)? {
            return Ok(false);
        }
        self.sys.probe(name, self.policy.probe_blocks.max(1))
    }
}

/// Non-fabric cycles of a run (fabric cycles are read off the shared
/// simulator counters instead, so probes and reloads are included).
fn non_fabric(rep: &RunReport) -> u64 {
    rep.control_cycles + rep.tail_cycles + rep.memory_stall_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{classify, FaultEffect, FaultInjector};
    use lfsr::crc::crc_bitwise;
    use picoga::ConfigFault;

    fn mk(policy: RecoveryPolicy) -> ResilientSystem {
        ResilientSystem::new(PicogaParams::dream(), ControlModel::default(), policy)
    }

    fn spec() -> CrcSpec {
        *CrcSpec::by_name("CRC-32/ETHERNET").expect("catalogue entry")
    }

    fn message() -> Vec<u8> {
        (0..64u32).map(|i| (i * 7 + 3) as u8).collect()
    }

    /// A semantic fault in the resident update context of `name`.
    fn semantic_fault_in_update(rs: &ResilientSystem, name: &str, seed: u64) -> ConfigFault {
        let slot = rs.system().slot_of(name, 0).expect("update resident");
        let pristine = rs.system().fabric().context(slot).expect("context").clone();
        let mut inj = FaultInjector::new(seed);
        loop {
            let f = inj.random_wire_flip(slot, &pristine).expect("fault");
            if classify(&f, &pristine) == FaultEffect::Semantic {
                return f;
            }
        }
    }

    #[test]
    fn seu_is_detected_at_checkpoint_and_healed_by_reload() {
        let mut rs = mk(RecoveryPolicy {
            scrub_period: 1,
            ..RecoveryPolicy::standard()
        });
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();
        let data = message();
        let expected = crc_bitwise(&spec, &data);

        let r1 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r1.crc, expected);
        assert!(r1.outcomes.is_empty(), "clean system, no recovery");

        let fault = semantic_fault_in_update(&rs, "eth", 17);
        rs.system_mut().fabric_mut().inject(&fault).unwrap();

        // The checkpoint after this message must detect and heal.
        let r2 = rs.checksum_guarded("eth", &data).unwrap();
        assert!(
            r2.outcomes
                .iter()
                .any(|o| matches!(o, RecoveryOutcome::HealedByReload { .. })),
            "reload heals an SEU: {:?}",
            r2.outcomes
        );
        assert_eq!(rs.system().health("eth"), Health::Healthy);

        let r3 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r3.crc, expected);
        assert!(!r3.software);

        let c = rs.system().resilience_counters();
        assert!(c.detections >= 1, "scrub counted the detection");
        assert!(c.reloads >= 1, "reload was accounted");
    }

    #[test]
    fn stuck_cell_evades_scrub_and_retires_to_software() {
        // Resynthesis disallowed: the ladder must end in fallback.
        let mut rs = mk(RecoveryPolicy {
            scrub_period: 1,
            allow_resynthesis: false,
            ..RecoveryPolicy::standard()
        });
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();
        let data = message();
        let expected = crc_bitwise(&spec, &data);
        rs.checksum_guarded("eth", &data).unwrap();

        // A semantic stuck-at cell in the resident update placement.
        let slot = rs.system().slot_of("eth", 0).unwrap();
        let pristine = rs.system().fabric().context(slot).unwrap().clone();
        let mut inj = FaultInjector::new(23);
        let fault = loop {
            let f = inj.random_stuck_cell(&pristine).unwrap();
            if classify(&f, &pristine) == FaultEffect::Semantic {
                break f;
            }
        };
        rs.system_mut().fabric_mut().inject(&fault).unwrap();

        let r2 = rs.checksum_guarded("eth", &data).unwrap();
        assert!(
            r2.outcomes.contains(&RecoveryOutcome::SoftwareFallback),
            "reload cannot heal stuck silicon: {:?}",
            r2.outcomes
        );
        assert_eq!(rs.system().health("eth"), Health::Fallback);

        let r3 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r3.crc, expected, "software kernel is exact");
        assert!(r3.software);
        assert!(rs.system().resilience_counters().fallback_messages >= 1);
    }

    #[test]
    fn dmr_delivers_no_wrong_answer_even_without_checkpoints() {
        let mut rs = mk(RecoveryPolicy {
            scrub_period: 0, // no periodic checking: DMR alone
            ..RecoveryPolicy::dmr()
        });
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();
        assert_eq!(rs.hosted().len(), 2, "shadow lane hosted");
        let data = message();
        let expected = crc_bitwise(&spec, &data);

        let r1 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r1.crc, expected);
        assert!(!r1.dmr_mismatch);

        let fault = semantic_fault_in_update(&rs, "eth", 31);
        rs.system_mut().fabric_mut().inject(&fault).unwrap();

        let r2 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r2.crc, expected, "mismatch answered from software");
        assert!(r2.dmr_mismatch);
        assert!(r2.software);
        assert!(rs.dmr_mismatches() >= 1);

        // The faulted lane healed by reload; the system is whole again.
        let r3 = rs.checksum_guarded("eth", &data).unwrap();
        assert_eq!(r3.crc, expected);
        assert!(!r3.dmr_mismatch);
        assert!(!r3.software);
    }

    #[test]
    fn exhausted_ladder_parks_streams_when_the_policy_says_so() {
        // Stream-serving policy with every repair step disabled: the
        // ladder must end on the checkpoint-migrate rung, not in a
        // silent Unrecovered, and the advice must be Park.
        let mut rs = mk(RecoveryPolicy {
            max_reload_retries: 0,
            allow_resynthesis: false,
            allow_software_fallback: false,
            ..RecoveryPolicy::stream_serving()
        });
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();

        let outcome = rs.recover("eth").unwrap();
        assert_eq!(outcome, RecoveryOutcome::CheckpointPark);
        assert_eq!(outcome.migration_advice(), MigrationAdvice::Park);
        assert_eq!(rs.system().health("eth"), Health::Suspect);

        // The full ladder maps to the expected migration advice.
        assert_eq!(
            RecoveryOutcome::HealedByReload { retries: 1 }.migration_advice(),
            MigrationAdvice::StayFabric
        );
        assert_eq!(
            RecoveryOutcome::SoftwareFallback.migration_advice(),
            MigrationAdvice::MarshalToSoftware
        );
    }

    #[test]
    fn dmr_stays_correct_under_a_stuck_cell() {
        // Regression: recovery via re-synthesis must never leave the two
        // lanes with identical placements — a physical stuck cell would
        // then corrupt both identically and the comparison would go
        // blind. Whatever the ladder does, no wrong answer may escape.
        let mut rs = mk(RecoveryPolicy {
            scrub_period: 0,
            ..RecoveryPolicy::dmr()
        });
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();
        let data = message();
        let expected = crc_bitwise(&spec, &data);
        rs.checksum_guarded("eth", &data).unwrap();

        let slot = rs.system().slot_of("eth", 0).unwrap();
        let pristine = rs.system().fabric().context(slot).unwrap().clone();
        let mut inj = FaultInjector::new(23);
        let fault = loop {
            let f = inj.random_stuck_cell(&pristine).unwrap();
            if classify(&f, &pristine) == FaultEffect::Semantic {
                break f;
            }
        };
        rs.system_mut().fabric_mut().inject(&fault).unwrap();

        for _ in 0..8 {
            let r = rs.checksum_guarded("eth", &data).unwrap();
            assert_eq!(r.crc, expected, "DMR must never deliver a wrong answer");
        }
        assert!(rs.dmr_mismatches() >= 1, "the stuck cell was noticed");
    }

    #[test]
    fn probe_unsound_cert_aborts_the_recovery_ladder_with_a_typed_error() {
        let mut rs = mk(RecoveryPolicy::standard());
        let spec = spec();
        rs.host("eth", &spec, FlowOptions::dream_with_m(32))
            .unwrap();

        // Doctor the lane's linearity certificate: pretend the prover
        // found a nonlinear cell. Every rung's lane_clean check runs
        // the datapath sweep, which must now refuse rather than certify.
        let mut p = build_personality("eth", &spec, &FlowOptions::dream_with_m(32)).unwrap();
        let genuine = p.linearity.take().expect("dream presets attach a cert");
        p.linearity = Some(analyze::LinearityCert {
            affine: false,
            linear: false,
            n_affine: 0,
            n_nonlinear: 1,
            offending_cells: vec![3],
            matrix: None,
            offset: None,
            ..genuine
        });
        rs.system_mut().replace_personality(p).unwrap();

        let err = rs.recover("eth").unwrap_err();
        assert!(
            matches!(
                err,
                ResilienceError::System(SystemError::ProbeUnsound { .. })
            ),
            "recovery must not declare an unprobeable lane healed: {err}"
        );
    }
}
