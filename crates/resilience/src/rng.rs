//! A tiny deterministic PRNG for fault campaigns.
//!
//! The build environment vendors no `rand`; campaigns only need a few
//! well-distributed 64-bit draws per trial and **bit-for-bit
//! reproducibility from a seed**, which SplitMix64 (Steele, Lea &
//! Flood's `splitmix64` finaliser) provides in ten lines. It is also the
//! generator conventionally used to seed larger PRNGs, so its statistical
//! quality is well studied.

/// SplitMix64: a 64-bit state marched by a Weyl sequence and finished
/// with a variant of the MurmurHash3 finaliser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole future is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` = 0 returns 0). Uses the
    /// widening-multiply trick; the modulo bias is < 2⁻⁶⁴·bound, far
    /// below campaign resolution.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// An independent generator split off from this one (distinct draws
    /// even for related seeds).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_sequence() {
        // Reference values of splitmix64 from seed 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
