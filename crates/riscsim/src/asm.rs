//! A tiny label-resolving assembler for hand-writing kernels in Rust.
//!
//! ```
//! use riscsim::asm::Asm;
//! use riscsim::isa::reg::*;
//! use riscsim::Cpu;
//!
//! let mut a = Asm::new();
//! a.li(T0, 0);
//! a.li(T1, 5);
//! a.label("loop");
//! a.addi(T0, T0, 2);
//! a.addi(T1, T1, -1);
//! a.bne(T1, ZERO, "loop");
//! a.halt();
//! let prog = a.assemble().unwrap();
//!
//! let mut cpu = Cpu::new(16);
//! cpu.run(&prog, 1000).unwrap();
//! assert_eq!(cpu.reg(T0), 10);
//! ```

use crate::isa::{AluOp, Cond, Instr, Reg, Width};
use std::collections::HashMap;
use std::fmt;

/// Errors from assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch/jump referenced a label that was never defined.
    UndefinedLabel {
        /// The missing label.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label '{label}'"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label '{label}'"),
        }
    }
}

impl std::error::Error for AsmError {}

enum Pending {
    Ready(Instr),
    Branch {
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jump {
        label: String,
    },
}

/// Program builder with named labels.
#[derive(Default)]
pub struct Asm {
    items: Vec<Pending>,
    labels: HashMap<String, usize>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_string(), self.items.len())
            .is_some()
        {
            self.duplicate.get_or_insert_with(|| name.to_string());
        }
        self
    }

    /// Register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.items
            .push(Pending::Ready(Instr::Alu { op, rd, rs1, rs2 }));
        self
    }

    /// Register-immediate ALU op.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.items
            .push(Pending::Ready(Instr::AluImm { op, rd, rs1, imm }));
        self
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// Loads a 32-bit constant with `lui`+`addi` (or one instruction when
    /// it fits 12 bits, as an assembler would).
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        let v = value as i32;
        if (-2048..2048).contains(&v) {
            return self.addi(rd, 0, v);
        }
        // lui loads bits 31:12; addi sign-extends, so pre-compensate.
        let low = (value & 0xFFF) as i32;
        let low = if low >= 2048 { low - 4096 } else { low };
        let high = value.wrapping_sub(low as u32) >> 12;
        self.items
            .push(Pending::Ready(Instr::Lui { rd, imm: high }));
        if low != 0 {
            self.addi(rd, rd, low);
        }
        self
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// `slli rd, rs1, imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Sll, rd, rs1, imm)
    }

    /// `srli rd, rs1, imm`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Srl, rd, rs1, imm)
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// Byte load (zero-extending).
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.items.push(Pending::Ready(Instr::Load {
            width: Width::Byte,
            rd,
            base,
            offset,
        }));
        self
    }

    /// Word load.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.items.push(Pending::Ready(Instr::Load {
            width: Width::Word,
            rd,
            base,
            offset,
        }));
        self
    }

    /// Word store.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.items.push(Pending::Ready(Instr::Store {
            width: Width::Word,
            rs,
            base,
            offset,
        }));
        self
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.items.push(Pending::Branch {
            cond,
            rs1,
            rs2,
            label: label.to_string(),
        });
        self
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Ne, rs1, rs2, label)
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Eq, rs1, rs2, label)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(Cond::Ltu, rs1, rs2, label)
    }

    /// Unconditional jump to a label.
    pub fn j(&mut self, label: &str) -> &mut Self {
        self.items.push(Pending::Jump {
            label: label.to_string(),
        });
        self
    }

    /// Stops the machine.
    pub fn halt(&mut self) -> &mut Self {
        self.items.push(Pending::Ready(Instr::Halt));
        self
    }

    /// Resolves labels and produces the instruction list.
    ///
    /// # Errors
    ///
    /// [`AsmError`] for undefined or duplicate labels.
    pub fn assemble(&self) -> Result<Vec<Instr>, AsmError> {
        if let Some(label) = &self.duplicate {
            return Err(AsmError::DuplicateLabel {
                label: label.clone(),
            });
        }
        self.items
            .iter()
            .map(|p| match p {
                Pending::Ready(i) => Ok(*i),
                Pending::Branch {
                    cond,
                    rs1,
                    rs2,
                    label,
                } => {
                    let target =
                        *self
                            .labels
                            .get(label)
                            .ok_or_else(|| AsmError::UndefinedLabel {
                                label: label.clone(),
                            })?;
                    Ok(Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        target,
                    })
                }
                Pending::Jump { label } => {
                    let target =
                        *self
                            .labels
                            .get(label)
                            .ok_or_else(|| AsmError::UndefinedLabel {
                                label: label.clone(),
                            })?;
                    Ok(Instr::Jump { target })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Cpu;
    use crate::isa::reg::*;

    #[test]
    fn li_covers_all_ranges() {
        for v in [
            0u32,
            1,
            2047,
            2048,
            4095,
            0x8000_0000,
            0xFFFF_FFFF,
            0x1234_5678,
            0xFFFF_F800,
        ] {
            let mut a = Asm::new();
            a.li(T0, v);
            a.halt();
            let mut cpu = Cpu::new(4);
            cpu.run(&a.assemble().unwrap(), 100).unwrap();
            assert_eq!(cpu.reg(T0), v, "li 0x{v:X}");
        }
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Asm::new();
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel {
                label: "nowhere".into()
            }
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Asm::new();
        a.label("x");
        a.halt();
        a.label("x");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel { label: "x".into() }
        );
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        a.li(T0, 3);
        a.li(T1, 0);
        a.label("loop");
        a.addi(T1, T1, 5);
        a.addi(T0, T0, -1);
        a.bne(T0, ZERO, "loop");
        a.beq(ZERO, ZERO, "done"); // forward reference
        a.addi(T1, T1, 100); // skipped
        a.label("done");
        a.halt();
        let mut cpu = Cpu::new(4);
        cpu.run(&a.assemble().unwrap(), 1000).unwrap();
        assert_eq!(cpu.reg(T1), 15);
    }
}
