//! The cycle-counting interpreter.

use crate::isa::{AluOp, Cond, CostModel, Instr, Width};
use std::fmt;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Memory access outside the allocated space.
    MemoryOutOfRange {
        /// Faulting byte address.
        addr: u32,
        /// Memory size.
        size: usize,
    },
    /// Unaligned word/half access.
    Misaligned {
        /// Faulting byte address.
        addr: u32,
    },
    /// Program counter ran off the end of the program.
    PcOutOfRange {
        /// Faulting instruction index.
        pc: usize,
    },
    /// The cycle budget was exhausted (runaway loop guard).
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::MemoryOutOfRange { addr, size } => {
                write!(f, "memory access at 0x{addr:X} outside {size} bytes")
            }
            CpuError::Misaligned { addr } => write!(f, "misaligned access at 0x{addr:X}"),
            CpuError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            CpuError::CycleLimit { limit } => write!(f, "cycle limit {limit} exhausted"),
        }
    }
}

impl std::error::Error for CpuError {}

/// A single-core RV32-style machine with a flat byte-addressable memory.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    mem: Vec<u8>,
    cost: CostModel,
    cycles: u64,
    instret: u64,
}

impl Cpu {
    /// Creates a machine with `mem_bytes` of zeroed memory.
    pub fn new(mem_bytes: usize) -> Self {
        Cpu {
            regs: [0; 32],
            mem: vec![0; mem_bytes],
            cost: CostModel::default(),
            cycles: 0,
            instret: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Reads a register (x0 reads as zero).
    pub fn reg(&self, r: u8) -> u32 {
        if r == 0 {
            0
        } else {
            self.regs[r as usize]
        }
    }

    /// Writes a register (writes to x0 are discarded).
    pub fn set_reg(&mut self, r: u8, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired so far.
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Copies bytes into memory.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemoryOutOfRange`] if the slice does not fit.
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) -> Result<(), CpuError> {
        let a = addr as usize;
        if a + bytes.len() > self.mem.len() {
            return Err(CpuError::MemoryOutOfRange {
                addr,
                size: self.mem.len(),
            });
        }
        self.mem[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads bytes from memory.
    ///
    /// # Errors
    ///
    /// [`CpuError::MemoryOutOfRange`] if the range does not fit.
    pub fn read_mem(&self, addr: u32, len: usize) -> Result<&[u8], CpuError> {
        let a = addr as usize;
        if a + len > self.mem.len() {
            return Err(CpuError::MemoryOutOfRange {
                addr,
                size: self.mem.len(),
            });
        }
        Ok(&self.mem[a..a + len])
    }

    fn load(&self, width: Width, addr: u32) -> Result<u32, CpuError> {
        match width {
            Width::Byte => Ok(self.read_mem(addr, 1)?[0] as u32),
            Width::Half => {
                if !addr.is_multiple_of(2) {
                    return Err(CpuError::Misaligned { addr });
                }
                let b = self.read_mem(addr, 2)?;
                Ok(u16::from_le_bytes([b[0], b[1]]) as u32)
            }
            Width::Word => {
                if !addr.is_multiple_of(4) {
                    return Err(CpuError::Misaligned { addr });
                }
                let b = self.read_mem(addr, 4)?;
                Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
        }
    }

    fn store(&mut self, width: Width, addr: u32, v: u32) -> Result<(), CpuError> {
        match width {
            Width::Byte => self.write_mem(addr, &[v as u8]),
            Width::Half => {
                if !addr.is_multiple_of(2) {
                    return Err(CpuError::Misaligned { addr });
                }
                self.write_mem(addr, &(v as u16).to_le_bytes())
            }
            Width::Word => {
                if !addr.is_multiple_of(4) {
                    return Err(CpuError::Misaligned { addr });
                }
                self.write_mem(addr, &v.to_le_bytes())
            }
        }
    }

    fn alu(op: AluOp, a: u32, b: u32) -> u32 {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Xor => a ^ b,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }

    fn cond(c: Cond, a: u32, b: u32) -> bool {
        match c {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// Runs `program` from instruction 0 until `Halt`, at most
    /// `cycle_limit` cycles.
    ///
    /// # Errors
    ///
    /// Any [`CpuError`]; the machine state is left as-is for inspection.
    pub fn run(&mut self, program: &[Instr], cycle_limit: u64) -> Result<(), CpuError> {
        let mut pc = 0usize;
        loop {
            if self.cycles >= cycle_limit {
                return Err(CpuError::CycleLimit { limit: cycle_limit });
            }
            let Some(instr) = program.get(pc) else {
                return Err(CpuError::PcOutOfRange { pc });
            };
            self.instret += 1;
            match *instr {
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let v = Self::alu(op, self.reg(rs1), self.reg(rs2));
                    self.set_reg(rd, v);
                    self.cycles += if op == AluOp::Mul {
                        self.cost.mul
                    } else {
                        self.cost.alu
                    };
                    pc += 1;
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let v = Self::alu(op, self.reg(rs1), imm as u32);
                    self.set_reg(rd, v);
                    self.cycles += self.cost.alu;
                    pc += 1;
                }
                Instr::Lui { rd, imm } => {
                    self.set_reg(rd, imm << 12);
                    self.cycles += self.cost.alu;
                    pc += 1;
                }
                Instr::Load {
                    width,
                    rd,
                    base,
                    offset,
                } => {
                    let addr = self.reg(base).wrapping_add(offset as u32);
                    let v = self.load(width, addr)?;
                    self.set_reg(rd, v);
                    self.cycles += self.cost.load;
                    pc += 1;
                }
                Instr::Store {
                    width,
                    rs,
                    base,
                    offset,
                } => {
                    let addr = self.reg(base).wrapping_add(offset as u32);
                    self.store(width, addr, self.reg(rs))?;
                    self.cycles += self.cost.store;
                    pc += 1;
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    if Self::cond(cond, self.reg(rs1), self.reg(rs2)) {
                        self.cycles += self.cost.branch_taken;
                        pc = target;
                    } else {
                        self.cycles += self.cost.branch_not_taken;
                        pc += 1;
                    }
                }
                Instr::Jump { target } => {
                    self.cycles += self.cost.branch_taken;
                    pc = target;
                }
                Instr::Halt => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::reg::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(Cpu::alu(AluOp::Add, 3, u32::MAX), 2);
        assert_eq!(Cpu::alu(AluOp::Sub, 3, 5), u32::MAX - 1);
        assert_eq!(Cpu::alu(AluOp::Sra, 0x8000_0000, 4), 0xF800_0000);
        assert_eq!(Cpu::alu(AluOp::Srl, 0x8000_0000, 4), 0x0800_0000);
        assert_eq!(Cpu::alu(AluOp::Slt, u32::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(Cpu::alu(AluOp::Sltu, u32::MAX, 0), 0);
    }

    #[test]
    fn x0_is_hardwired() {
        let mut cpu = Cpu::new(16);
        cpu.set_reg(0, 42);
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn simple_loop_counts_cycles() {
        // t0 = 0; for 10 iterations t0 += 1.
        let prog = vec![
            Instr::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: ZERO,
                imm: 0,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: T1,
                rs1: ZERO,
                imm: 10,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T0,
                imm: 1,
            }, // loop body
            Instr::Branch {
                cond: Cond::Ne,
                rs1: T0,
                rs2: T1,
                target: 2,
            },
            Instr::Halt,
        ];
        let mut cpu = Cpu::new(16);
        cpu.run(&prog, 10_000).unwrap();
        assert_eq!(cpu.reg(T0), 10);
        // 2 setup + 10 adds + 9 taken + 1 not-taken = 2+10+18+1 = 31.
        assert_eq!(cpu.cycles(), 31);
        // 2 setup + 10 adds + 10 branches + 1 halt.
        assert_eq!(cpu.instret(), 23);
    }

    #[test]
    fn memory_roundtrip_and_endianness() {
        let mut cpu = Cpu::new(64);
        cpu.set_reg(A0, 8);
        let prog = vec![
            Instr::Lui {
                rd: T0,
                imm: 0x12345,
            },
            Instr::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T0,
                imm: 0x678,
            },
            Instr::Store {
                width: Width::Word,
                rs: T0,
                base: A0,
                offset: 0,
            },
            Instr::Load {
                width: Width::Byte,
                rd: T1,
                base: A0,
                offset: 0,
            },
            Instr::Load {
                width: Width::Half,
                rd: T2,
                base: A0,
                offset: 2,
            },
            Instr::Halt,
        ];
        cpu.run(&prog, 1000).unwrap();
        assert_eq!(cpu.reg(T0), 0x1234_5678);
        assert_eq!(cpu.reg(T1), 0x78); // little-endian low byte
        assert_eq!(cpu.reg(T2), 0x1234);
    }

    #[test]
    fn faults_are_reported() {
        let mut cpu = Cpu::new(8);
        let oob = vec![Instr::Load {
            width: Width::Word,
            rd: T0,
            base: ZERO,
            offset: 100,
        }];
        assert!(matches!(
            cpu.run(&oob, 100),
            Err(CpuError::MemoryOutOfRange { .. })
        ));
        let mis = vec![Instr::Load {
            width: Width::Word,
            rd: T0,
            base: ZERO,
            offset: 2,
        }];
        assert!(matches!(
            cpu.run(&mis, 100),
            Err(CpuError::Misaligned { addr: 2 })
        ));
        let spin = vec![Instr::Jump { target: 0 }];
        assert!(matches!(
            cpu.run(&spin, 50),
            Err(CpuError::CycleLimit { limit: 50 })
        ));
        let off = vec![Instr::AluImm {
            op: AluOp::Add,
            rd: T0,
            rs1: ZERO,
            imm: 0,
        }];
        assert!(matches!(
            cpu.run(&off, 100),
            Err(CpuError::PcOutOfRange { pc: 1 })
        ));
    }
}
