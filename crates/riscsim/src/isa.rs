//! Instruction set of the baseline RISC model.
//!
//! A compact RV32I-style subset — enough to express real CRC kernels the
//! way a compiler would emit them for an embedded control core like the
//! STxP70. Instructions carry decoded operands directly; there is no
//! binary encoding layer because nothing here needs one.

/// Architectural register index (x0–x31; x0 is hardwired to zero).
pub type Reg = u8;

/// Conventional ABI names used by the kernels.
pub mod reg {
    use super::Reg;
    /// Hardwired zero.
    pub const ZERO: Reg = 0;
    /// Return address.
    pub const RA: Reg = 1;
    /// Stack pointer.
    pub const SP: Reg = 2;
    /// Argument/return registers a0–a5.
    pub const A0: Reg = 10;
    /// Second argument register.
    pub const A1: Reg = 11;
    /// Third argument register.
    pub const A2: Reg = 12;
    /// Fourth argument register.
    pub const A3: Reg = 13;
    /// Fifth argument register.
    pub const A4: Reg = 14;
    /// Sixth argument register.
    pub const A5: Reg = 15;
    /// Temporaries t0–t4.
    pub const T0: Reg = 5;
    /// Second temporary.
    pub const T1: Reg = 6;
    /// Third temporary.
    pub const T2: Reg = 7;
    /// Fourth temporary.
    pub const T3: Reg = 28;
    /// Fifth temporary.
    pub const T4: Reg = 29;
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// One byte (zero-extended on load).
    Byte,
    /// Two bytes (zero-extended on load).
    Half,
    /// Four bytes.
    Word,
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation (Sub is not encodable; use a negative Add).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// Load upper immediate: `rd = imm << 12`.
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper 20 bits.
        imm: u32,
    },
    /// Memory load.
    Load {
        /// Access width.
        width: Width,
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Access width.
        width: Width,
        /// Source.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Target instruction index.
        target: usize,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Target instruction index.
        target: usize,
    },
    /// Stop execution.
    Halt,
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Bitwise XOR.
    Xor,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Logical left shift.
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Set-less-than (signed).
    Slt,
    /// Set-less-than (unsigned).
    Sltu,
    /// 32×32→32 multiply (RV32M).
    Mul,
}

/// Per-class cycle costs of the simple in-order pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU / immediate operations.
    pub alu: u64,
    /// Loads (cache-hit latency).
    pub load: u64,
    /// Stores.
    pub store: u64,
    /// Not-taken branch.
    pub branch_not_taken: u64,
    /// Taken branch / jump (pipeline refill bubble).
    pub branch_taken: u64,
    /// Multiply.
    pub mul: u64,
}

impl Default for CostModel {
    /// A small embedded scalar core: single-issue, 2-cycle loads, 2-cycle
    /// taken-branch penalty.
    fn default() -> Self {
        CostModel {
            alu: 1,
            load: 2,
            store: 1,
            branch_not_taken: 1,
            branch_taken: 2,
            mul: 2,
        }
    }
}
