//! CRC kernels for the RISC baseline (the paper's Table 1 reference).
//!
//! Three hand-written kernels, the way a compiler would emit them for an
//! embedded scalar core:
//!
//! * [`crc32_bitwise`] — the table-free serial loop (~62 cycles/byte), the
//!   floor any processor can reach without tables;
//! * [`crc32_sarwate`] — the byte-table "fast software CRC" (one 256×4-byte
//!   table, ~13 cycles/byte on the default cost model);
//! * [`crc32_slicing4`] — four parallel tables, one 32-bit word per main
//!   loop (~8 cycles/byte), the strongest portable software point.
//!
//! All work in the reflected register domain, as real Ethernet software
//! does, and are verified bit-exact against the host implementation.

use crate::asm::Asm;
use crate::cpu::{Cpu, CpuError};
use crate::isa::reg::*;
use crate::isa::Instr;

/// Memory layout used by the kernel runner.
const TABLE_ADDR: u32 = 0x1000;
const DATA_ADDR: u32 = 0x2000;

/// A CRC kernel: program plus the constants it needs in memory.
#[derive(Debug, Clone)]
pub struct CrcKernel {
    name: &'static str,
    program: Vec<Instr>,
    table: Option<Vec<u8>>,
    init: u32,
    xorout: u32,
}

/// Result of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelRun {
    /// The checksum (spec conventions already applied).
    pub crc: u32,
    /// Cycles consumed, including per-message setup.
    pub cycles: u64,
    /// Instructions retired.
    pub instret: u64,
}

impl KernelRun {
    /// Sustained throughput for this message at `clock_hz`.
    pub fn throughput_bps(&self, bits: u64, clock_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        bits as f64 * clock_hz / self.cycles as f64
    }
}

/// Builds the reflected (bit-reversed) form of a CRC polynomial.
fn reflect32(x: u32) -> u32 {
    x.reverse_bits()
}

/// Builds the 256-entry reflected Sarwate table for `poly` (normal
/// notation, e.g. `0x04C11DB7`).
fn build_table(poly: u32) -> Vec<u8> {
    let poly_r = reflect32(poly);
    let mut out = Vec::with_capacity(256 * 4);
    for i in 0..256u32 {
        let mut v = i;
        for _ in 0..8 {
            v = if v & 1 == 1 {
                (v >> 1) ^ poly_r
            } else {
                v >> 1
            };
        }
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// The byte-table kernel for a reflected 32-bit CRC (Ethernet by default).
///
/// Register convention inside the loop: `a0` = data pointer, `a1` = end
/// pointer, `a2` = working register, `a3` = table base.
pub fn crc32_sarwate(poly: u32, init: u32, xorout: u32) -> CrcKernel {
    let mut a = Asm::new();
    // Setup: crc = init (reflected domain == init for all-ones), table base.
    a.li(A2, init);
    a.li(A3, TABLE_ADDR);
    a.beq(A0, A1, "done");
    a.label("loop");
    a.lbu(T0, A0, 0);
    a.xor(T0, T0, A2);
    a.andi(T0, T0, 0xFF);
    a.slli(T0, T0, 2);
    a.add(T0, T0, A3);
    a.lw(T0, T0, 0);
    a.srli(A2, A2, 8);
    a.xor(A2, A2, T0);
    a.addi(A0, A0, 1);
    a.bltu(A0, A1, "loop");
    a.label("done");
    a.halt();
    CrcKernel {
        name: "crc32-sarwate",
        // Invariant, not an input failure: the program text is a
        // compile-time constant with matched label/branch pairs, so
        // assembly cannot fail for any caller-supplied argument.
        program: a.assemble().expect("static kernel assembles"),
        table: Some(build_table(poly)),
        init,
        xorout,
    }
}

/// The table-free bit-serial kernel (reflected domain).
pub fn crc32_bitwise(poly: u32, init: u32, xorout: u32) -> CrcKernel {
    let mut a = Asm::new();
    a.li(A2, init);
    a.li(A4, reflect32(poly));
    a.beq(A0, A1, "done");
    a.label("byte");
    a.lbu(T0, A0, 0);
    a.xor(A2, A2, T0);
    a.li(T1, 8);
    a.label("bit");
    a.andi(T2, A2, 1);
    a.srli(A2, A2, 1);
    a.beq(T2, ZERO, "skip");
    a.xor(A2, A2, A4);
    a.label("skip");
    a.addi(T1, T1, -1);
    a.bne(T1, ZERO, "bit");
    a.addi(A0, A0, 1);
    a.bltu(A0, A1, "byte");
    a.label("done");
    a.halt();
    CrcKernel {
        name: "crc32-bitwise",
        // Invariant: static program text, see `crc32_sarwate`.
        program: a.assemble().expect("static kernel assembles"),
        table: None,
        init,
        xorout,
    }
}

/// The slicing-by-4 kernel: four parallel tables, one 32-bit word of
/// message per main-loop iteration (~8 cycles/byte on the default cost
/// model — the strongest portable software CRC, as used by fast network
/// stacks). Tail bytes fall back to the byte table (T0).
pub fn crc32_slicing4(poly: u32, init: u32, xorout: u32) -> CrcKernel {
    // Table memory layout: T0 at TABLE_ADDR, Tk at TABLE_ADDR + k*1024.
    let mut a = Asm::new();
    a.li(A2, init);
    a.li(A3, TABLE_ADDR);
    // a5 = end of the 4-byte-aligned region, a1 = true end.
    a.alu(crate::isa::AluOp::Sub, T0, A1, A0);
    a.andi(T0, T0, !3);
    a.add(A5, A0, T0);
    a.beq(A0, A5, "tail");
    a.label("loop4");
    a.lw(T0, A0, 0);
    a.xor(T0, T0, A2);
    // Byte 0 (lowest) -> T3.
    a.andi(T1, T0, 0xFF);
    a.slli(T1, T1, 2);
    a.add(T1, T1, A3);
    a.lw(A2, T1, 3072);
    // Byte 1 -> T2.
    a.srli(T1, T0, 8);
    a.andi(T1, T1, 0xFF);
    a.slli(T1, T1, 2);
    a.add(T1, T1, A3);
    a.lw(T2, T1, 2048);
    a.xor(A2, A2, T2);
    // Byte 2 -> T1.
    a.srli(T1, T0, 16);
    a.andi(T1, T1, 0xFF);
    a.slli(T1, T1, 2);
    a.add(T1, T1, A3);
    a.lw(T2, T1, 1024);
    a.xor(A2, A2, T2);
    // Byte 3 -> T0 (no mask needed after the 24-bit shift).
    a.srli(T1, T0, 24);
    a.slli(T1, T1, 2);
    a.add(T1, T1, A3);
    a.lw(T2, T1, 0);
    a.xor(A2, A2, T2);
    a.addi(A0, A0, 4);
    a.bltu(A0, A5, "loop4");
    // Byte-table tail for the remaining 0..3 bytes.
    a.label("tail");
    a.beq(A0, A1, "done");
    a.label("tail_loop");
    a.lbu(T0, A0, 0);
    a.xor(T0, T0, A2);
    a.andi(T0, T0, 0xFF);
    a.slli(T0, T0, 2);
    a.add(T0, T0, A3);
    a.lw(T0, T0, 0);
    a.srli(A2, A2, 8);
    a.xor(A2, A2, T0);
    a.addi(A0, A0, 1);
    a.bltu(A0, A1, "tail_loop");
    a.label("done");
    a.halt();

    // T0 = reflected Sarwate table; Tk[i] = (Tk-1[i] >> 8) ^ T0[Tk-1[i] & 0xFF].
    let t0 = build_table(poly);
    let word = |t: &[u8], i: usize| {
        u32::from_le_bytes([t[4 * i], t[4 * i + 1], t[4 * i + 2], t[4 * i + 3]])
    };
    let mut tables = t0.clone();
    let mut prev = t0.clone();
    for _ in 1..4 {
        let mut t = Vec::with_capacity(1024);
        for i in 0..256 {
            let v = word(&prev, i);
            let next = (v >> 8) ^ word(&t0, (v & 0xFF) as usize);
            t.extend_from_slice(&next.to_le_bytes());
        }
        tables.extend_from_slice(&t);
        prev = t;
    }

    CrcKernel {
        name: "crc32-slicing4",
        // Invariant: static program text, see `crc32_sarwate`.
        program: a.assemble().expect("static kernel assembles"),
        table: Some(tables),
        init,
        xorout,
    }
}

/// Convenience constructors for the Ethernet CRC-32.
impl CrcKernel {
    /// The paper's "fast software" baseline: byte-table Ethernet CRC-32.
    pub fn ethernet_sarwate() -> CrcKernel {
        crc32_sarwate(0x04C1_1DB7, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// The table-free Ethernet CRC-32.
    pub fn ethernet_bitwise() -> CrcKernel {
        crc32_bitwise(0x04C1_1DB7, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// The slicing-by-4 Ethernet CRC-32 (fastest software point).
    pub fn ethernet_slicing4() -> CrcKernel {
        crc32_slicing4(0x04C1_1DB7, 0xFFFF_FFFF, 0xFFFF_FFFF)
    }

    /// Kernel name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The initial register value the kernel loads.
    pub fn init(&self) -> u32 {
        self.init
    }

    /// Instruction count of the program.
    pub fn len(&self) -> usize {
        self.program.len()
    }

    /// `true` if the program is empty (it never is for real kernels).
    pub fn is_empty(&self) -> bool {
        self.program.is_empty()
    }

    /// Runs the kernel over `data` on a fresh machine.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] (memory sizing, runaway guard).
    pub fn run(&self, data: &[u8]) -> Result<KernelRun, CpuError> {
        let mem = (DATA_ADDR as usize + data.len())
            .max(0x3000)
            .next_power_of_two();
        let mut cpu = Cpu::new(mem);
        if let Some(t) = &self.table {
            cpu.write_mem(TABLE_ADDR, t)?;
        }
        cpu.write_mem(DATA_ADDR, data)?;
        cpu.set_reg(A0, DATA_ADDR);
        cpu.set_reg(A1, DATA_ADDR + data.len() as u32);
        // Generous runaway guard: 200 cycles/byte.
        let limit = 10_000 + 200 * data.len() as u64;
        cpu.run(&self.program, limit)?;
        Ok(KernelRun {
            crc: cpu.reg(A2) ^ self.xorout,
            cycles: cpu.cycles(),
            instret: cpu.instret(),
        })
    }

    /// Average cycles per byte, measured over a 1 KiB message (steady
    /// state; setup amortised away).
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] from the two measurement runs (memory
    /// sizing, runaway guard) — reachable from the experiment drivers,
    /// so the refusal is typed rather than a panic.
    pub fn cycles_per_byte(&self) -> Result<f64, CpuError> {
        let a = self.run(&[0xA5u8; 1024])?;
        let b = self.run(&[0xA5u8; 2048])?;
        Ok((b.cycles - a.cycles) as f64 / 1024.0)
    }

    /// Steady-state software throughput at `clock_hz` in bits/s.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] from the underlying measurement runs.
    pub fn steady_throughput_bps(&self, clock_hz: f64) -> Result<f64, CpuError> {
        Ok(8.0 * clock_hz / self.cycles_per_byte()?)
    }

    /// Per-bit energy of this kernel on a core that burns
    /// `core_pj_per_cycle`: the paper's flat "≈400 pJ/bit, independently
    /// from the message length" corresponds to ≈ 246 pJ/cycle at
    /// 13 cycles/byte.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] from the underlying measurement runs.
    pub fn pj_per_bit(&self, core_pj_per_cycle: f64) -> Result<f64, CpuError> {
        Ok(self.cycles_per_byte()? * core_pj_per_cycle / 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host-side Ethernet CRC-32 reference (independent of the lfsr crate
    /// to keep this crate standalone).
    fn crc32_host(data: &[u8]) -> u32 {
        let mut reg = 0xFFFF_FFFFu32;
        for &b in data {
            reg ^= b as u32;
            for _ in 0..8 {
                reg = if reg & 1 == 1 {
                    (reg >> 1) ^ 0xEDB8_8320
                } else {
                    reg >> 1
                };
            }
        }
        reg ^ 0xFFFF_FFFF
    }

    #[test]
    fn sarwate_kernel_is_bit_exact() {
        let k = CrcKernel::ethernet_sarwate();
        for msg in [&b""[..], b"a", b"123456789", b"the quick brown fox"] {
            let r = k.run(msg).unwrap();
            assert_eq!(r.crc, crc32_host(msg), "{msg:?}");
        }
        assert_eq!(k.run(b"123456789").unwrap().crc, 0xCBF4_3926);
    }

    #[test]
    fn bitwise_kernel_is_bit_exact() {
        let k = CrcKernel::ethernet_bitwise();
        let msg: Vec<u8> = (0..100).map(|i| (i * 7) as u8).collect();
        assert_eq!(k.run(&msg).unwrap().crc, crc32_host(&msg));
    }

    #[test]
    fn sarwate_is_about_13_cycles_per_byte() {
        let cpb = CrcKernel::ethernet_sarwate().cycles_per_byte().unwrap();
        assert!((11.0..16.0).contains(&cpb), "got {cpb}");
    }

    #[test]
    fn bitwise_is_much_slower_than_sarwate() {
        let fast = CrcKernel::ethernet_sarwate().cycles_per_byte().unwrap();
        let slow = CrcKernel::ethernet_bitwise().cycles_per_byte().unwrap();
        assert!(slow > 4.0 * fast, "bitwise {slow} vs sarwate {fast}");
    }

    #[test]
    fn steady_throughput_is_sub_gigabit_at_200mhz() {
        // The paper's point: a 200 MHz RISC cannot approach Gbit/s CRC.
        let bps = CrcKernel::ethernet_sarwate()
            .steady_throughput_bps(200e6)
            .unwrap();
        assert!(bps < 0.5e9, "got {bps}");
        assert!(bps > 0.02e9, "implausibly slow: {bps}");
    }

    #[test]
    fn energy_reference_matches_paper_order() {
        // With a ~250 pJ/cycle embedded core the table CRC lands near the
        // paper's 400 pJ/bit reference.
        let pj = CrcKernel::ethernet_sarwate().pj_per_bit(246.0).unwrap();
        assert!((300.0..500.0).contains(&pj), "got {pj}");
    }

    #[test]
    fn slicing4_kernel_is_bit_exact() {
        let k = CrcKernel::ethernet_slicing4();
        assert_eq!(k.run(b"123456789").unwrap().crc, 0xCBF4_3926);
        // All tail residues and an unaligned-ish spread of lengths.
        let msg: Vec<u8> = (0..259).map(|i| (i * 13 + 7) as u8).collect();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 259] {
            let r = k.run(&msg[..len]).unwrap();
            assert_eq!(r.crc, crc32_host(&msg[..len]), "len={len}");
        }
    }

    #[test]
    fn slicing4_beats_sarwate() {
        let s4 = CrcKernel::ethernet_slicing4().cycles_per_byte().unwrap();
        let s1 = CrcKernel::ethernet_sarwate().cycles_per_byte().unwrap();
        assert!(s4 < 0.8 * s1, "slicing {s4} vs sarwate {s1}");
        assert!((5.0..11.0).contains(&s4), "slicing {s4} cy/B");
    }

    #[test]
    fn cycle_count_scales_linearly() {
        let k = CrcKernel::ethernet_sarwate();
        let c1 = k.run(&[0u8; 100]).unwrap().cycles;
        let c2 = k.run(&[0u8; 200]).unwrap().cycles;
        let c3 = k.run(&[0u8; 300]).unwrap().cycles;
        assert_eq!(c3 - c2, c2 - c1);
    }
}
