//! # riscsim — the embedded-RISC software baseline
//!
//! Table 1 of the paper compares DREAM against "Fast software
//! implementation on a RISC processor working at the same frequency", and
//! Fig. 7 against its ≈400 pJ/bit energy. That processor is not available;
//! this crate substitutes a small RV32-style cycle-counting interpreter
//! ([`Cpu`]), a label assembler ([`asm::Asm`]) and hand-written CRC kernels
//! ([`kernels`]) verified bit-exact against the host implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod cpu;
pub mod isa;
pub mod kernels;

pub use cpu::{Cpu, CpuError};
pub use isa::{AluOp, Cond, CostModel, Instr, Width};
pub use kernels::{crc32_bitwise, crc32_sarwate, crc32_slicing4, CrcKernel, KernelRun};
