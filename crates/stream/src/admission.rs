//! Admission control and the typed overload ladder.
//!
//! All arithmetic here is integer and all state is explicit, so a
//! seeded campaign replays identically: the token bucket refills by a
//! fixed amount per tick, occupancy is measured in whole percent of the
//! global queue capacity, and the ladder moves between levels with
//! hysteresis (a level is entered at its threshold but only left
//! `exit_margin_pct` below it) so one oscillating client cannot make
//! the service flap between shedding regimes.

/// A deterministic token bucket: `refill` tokens per tick, capped at
/// `capacity`; opening a stream takes one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBucket {
    capacity: u32,
    refill: u32,
    tokens: u32,
}

impl TokenBucket {
    /// A full bucket with the given capacity and per-tick refill.
    #[must_use]
    pub fn new(capacity: u32, refill: u32) -> Self {
        TokenBucket {
            capacity,
            refill,
            tokens: capacity,
        }
    }

    /// Adds one tick's refill, saturating at capacity.
    pub fn tick(&mut self) {
        self.tokens = (self.tokens + self.refill).min(self.capacity);
    }

    /// Takes one token if available.
    pub fn try_take(&mut self) -> bool {
        if self.tokens == 0 {
            return false;
        }
        self.tokens -= 1;
        true
    }

    /// Tokens currently available.
    #[must_use]
    pub fn tokens(&self) -> u32 {
        self.tokens
    }
}

/// How hard the service is currently shedding, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OverloadLevel {
    /// Everything admitted and served on the fabric.
    Normal,
    /// New streams are refused; existing streams are unaffected.
    RejectNew,
    /// Additionally, low-priority fabric streams migrate to the
    /// software kernel, freeing fabric residency and context churn for
    /// high-priority work.
    DegradeLowPriority,
    /// Additionally, idle streams (empty queue, no recent activity) are
    /// checkpointed and parked.
    ParkIdle,
}

impl OverloadLevel {
    /// Stable level name for traces and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OverloadLevel::Normal => "Normal",
            OverloadLevel::RejectNew => "RejectNew",
            OverloadLevel::DegradeLowPriority => "DegradeLowPriority",
            OverloadLevel::ParkIdle => "ParkIdle",
        }
    }

    /// The ladder rank, 0 (Normal) … 3 (ParkIdle). Public so the
    /// `analyze` model checker's abstract ladder can be cross-checked
    /// against this implementation rank-for-rank.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            OverloadLevel::Normal => 0,
            OverloadLevel::RejectNew => 1,
            OverloadLevel::DegradeLowPriority => 2,
            OverloadLevel::ParkIdle => 3,
        }
    }

    /// Inverse of [`OverloadLevel::rank`]; ranks above 3 saturate to
    /// [`OverloadLevel::ParkIdle`].
    #[must_use]
    pub fn from_rank(rank: u8) -> Self {
        match rank {
            0 => OverloadLevel::Normal,
            1 => OverloadLevel::RejectNew,
            2 => OverloadLevel::DegradeLowPriority,
            _ => OverloadLevel::ParkIdle,
        }
    }
}

/// Static limits and thresholds of the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Live sessions allowed at once (parked streams don't count).
    pub max_streams: usize,
    /// Chunks one stream may have queued before `feed` is refused.
    pub per_stream_queue_chunks: usize,
    /// Total queued payload bytes across all streams — the occupancy
    /// denominator for the overload ladder.
    pub global_queue_bytes: usize,
    /// Token-bucket burst size for stream opens.
    pub bucket_capacity: u32,
    /// Token-bucket refill per tick.
    pub bucket_refill: u32,
    /// Occupancy percent at which [`OverloadLevel::RejectNew`] begins.
    pub reject_enter_pct: u32,
    /// Occupancy percent at which [`OverloadLevel::DegradeLowPriority`]
    /// begins.
    pub degrade_enter_pct: u32,
    /// Occupancy percent at which [`OverloadLevel::ParkIdle`] begins.
    pub park_enter_pct: u32,
    /// Hysteresis: a level is left only when occupancy drops this many
    /// percentage points below its entry threshold.
    pub exit_margin_pct: u32,
    /// Chunks the pump processes per tick across all streams.
    pub pump_budget_chunks: usize,
    /// Ticks without activity before a stream counts as idle for the
    /// park rung.
    pub idle_grace_ticks: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_streams: 256,
            per_stream_queue_chunks: 8,
            global_queue_bytes: 64 * 1024,
            bucket_capacity: 32,
            bucket_refill: 8,
            reject_enter_pct: 60,
            degrade_enter_pct: 75,
            park_enter_pct: 90,
            exit_margin_pct: 15,
            pump_budget_chunks: 64,
            idle_grace_ticks: 2,
        }
    }
}

impl AdmissionConfig {
    fn enter_pct(&self, level: OverloadLevel) -> u32 {
        match level {
            OverloadLevel::Normal => 0,
            OverloadLevel::RejectNew => self.reject_enter_pct,
            OverloadLevel::DegradeLowPriority => self.degrade_enter_pct,
            OverloadLevel::ParkIdle => self.park_enter_pct,
        }
    }

    /// The ladder step for this tick: escalate immediately to the
    /// highest level whose threshold `occupancy_pct` meets, de-escalate
    /// one level at a time and only past the hysteresis margin.
    #[must_use]
    pub fn next_level(&self, current: OverloadLevel, occupancy_pct: u32) -> OverloadLevel {
        let mut target = OverloadLevel::Normal;
        for level in [
            OverloadLevel::RejectNew,
            OverloadLevel::DegradeLowPriority,
            OverloadLevel::ParkIdle,
        ] {
            if occupancy_pct >= self.enter_pct(level) {
                target = level;
            }
        }
        if target >= current {
            return target;
        }
        // De-escalation with hysteresis, one rung per tick.
        let enter = self.enter_pct(current);
        if occupancy_pct + self.exit_margin_pct < enter {
            OverloadLevel::from_rank(current.rank() - 1)
        } else {
            current
        }
    }
}

/// Every decision the service takes, visible and countable. All fields
/// are cumulative over the service lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Streams admitted and opened.
    pub opened: u64,
    /// Streams finished and delivered.
    pub completed: u64,
    /// Opens refused because the token bucket was empty.
    pub rejected_admission: u64,
    /// Opens refused by the [`OverloadLevel::RejectNew`] rung.
    pub rejected_overload: u64,
    /// Opens refused because `max_streams` sessions were live.
    pub rejected_capacity: u64,
    /// Feeds refused because the stream's own queue was full.
    pub rejected_queue_full: u64,
    /// Feeds refused because the global queue byte budget was full.
    pub rejected_global_full: u64,
    /// Low-priority streams migrated to software by the degrade rung.
    pub degraded_low_priority: u64,
    /// Idle streams checkpointed and parked by the park rung.
    pub parked_idle: u64,
    /// Streams parked because recovery advised
    /// [`resilience::MigrationAdvice::Park`].
    pub parked_fault: u64,
    /// Parked streams rehydrated.
    pub resumed: u64,
    /// Snapshots encoded (park and explicit checkpoint alike).
    pub checkpoints: u64,
    /// Snapshots decoded and rehydrated into live sessions.
    pub restores: u64,
    /// Transactional batches rolled back after a guard detection.
    pub fault_rollbacks: u64,
    /// Batches re-run after recovery (on fabric or software).
    pub batch_reruns: u64,
    /// Sessions marshalled out of the transformed domain to continue on
    /// the software kernel (fault-driven, not ladder-driven).
    pub migrated_to_software: u64,
    /// Chunks pumped end to end.
    pub chunks_processed: u64,
    /// Overload level escalations and de-escalations.
    pub level_transitions: u64,
    /// Streams checkpointed out for cross-shard migration (live
    /// detaches and parked-snapshot exports alike).
    pub detached: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_refills_and_bounds_bursts() {
        let mut b = TokenBucket::new(2, 1);
        assert!(b.try_take());
        assert!(b.try_take());
        assert!(!b.try_take(), "burst capacity exhausted");
        b.tick();
        assert!(b.try_take());
        b.tick();
        b.tick();
        b.tick();
        assert_eq!(b.tokens(), 2, "refill saturates at capacity");
    }

    #[test]
    fn ladder_escalates_immediately_and_decays_with_hysteresis() {
        let cfg = AdmissionConfig::default();
        let mut level = OverloadLevel::Normal;
        level = cfg.next_level(level, 95);
        assert_eq!(
            level,
            OverloadLevel::ParkIdle,
            "spike escalates straight up"
        );
        // Just below the entry threshold is NOT enough to de-escalate.
        level = cfg.next_level(level, 80);
        assert_eq!(level, OverloadLevel::ParkIdle, "hysteresis holds the level");
        // Past the margin: one rung per tick.
        level = cfg.next_level(level, 10);
        assert_eq!(level, OverloadLevel::DegradeLowPriority);
        level = cfg.next_level(level, 10);
        assert_eq!(level, OverloadLevel::RejectNew);
        level = cfg.next_level(level, 10);
        assert_eq!(level, OverloadLevel::Normal);
        assert_eq!(cfg.next_level(level, 10), OverloadLevel::Normal);
    }
}
