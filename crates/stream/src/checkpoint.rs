//! Serializable stream snapshots with a guarded binary envelope.
//!
//! A checkpoint captures everything needed to resume a stream
//! bit-exactly: the LFSR state **in the domain it lives in**, the
//! staged residual bits, undelivered scrambler output, the unprocessed
//! chunk queue, and the scheduling metadata. Transformed states are
//! stamped with the [`DerbyTransform::digest`] of the transform that
//! produced them: re-synthesis preserves the transform (same spec, same
//! M), so a snapshot rehydrates onto a reloaded or re-synthesized lane
//! directly, while a lane built for a different M is rejected with a
//! typed error instead of silently computing garbage.
//!
//! The wire format is deliberately dull — little-endian, length
//! prefixed — and wrapped in an envelope of magic, version and a
//! CRC-32/ETHERNET over every preceding byte, so any single corrupted
//! or missing byte is rejected at decode time.
//!
//! [`DerbyTransform::digest`]: lfsr_parallel::DerbyTransform::digest

use crate::session::{Priority, StreamKind};
use gf2::BitVec;
use lfsr::crc::{crc_bitwise, CrcSpec};
use std::fmt;

/// Envelope magic: "PiCoGA STream Checkpoint".
pub const MAGIC: [u8; 4] = *b"PSTC";
/// Envelope version accepted by this build.
pub const VERSION: u16 = 1;

/// Digest value meaning "no transform": the state is plain, or the lane
/// is a dense fallback whose transform is the identity.
pub const NO_TRANSFORM: u64 = 0;

/// A self-contained snapshot of one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheckpoint {
    /// Personality the stream was (and must again be) served by.
    pub name: String,
    /// What the stream computes.
    pub kind: StreamKind,
    /// Scheduling class.
    pub priority: Priority,
    /// Absolute deadline tick (EDF key) at checkpoint time.
    pub deadline: u64,
    /// `true` when `state` is in the plain (software) domain; `false`
    /// when it is in the transformed domain of the lane identified by
    /// `t_digest`.
    pub plain_domain: bool,
    /// [`DerbyTransform::digest`] of the transform `state` lives under,
    /// or [`NO_TRANSFORM`] for plain states and dense lanes.
    ///
    /// [`DerbyTransform::digest`]: lfsr_parallel::DerbyTransform::digest
    pub t_digest: u64,
    /// The LFSR state, in the domain named by `plain_domain`.
    pub state: BitVec,
    /// Residual bits staged toward the next M-bit block.
    pub staged: BitVec,
    /// Scrambler output produced but not yet collected.
    pub out_pending: BitVec,
    /// Chunks that were queued but never pumped.
    pub queued: Vec<Vec<u8>>,
    /// Payload bytes already absorbed into `state`/`staged`.
    pub bytes_fed: u64,
}

/// Why a snapshot failed to decode or rehydrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer bytes than the envelope or a length prefix promised.
    Truncated {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic(
        /// The bytes found instead.
        [u8; 4],
    ),
    /// The envelope version is not [`VERSION`].
    BadVersion(
        /// The version found.
        u16,
    ),
    /// The envelope CRC does not match the payload.
    CrcMismatch {
        /// CRC stored in the envelope.
        stored: u64,
        /// CRC recomputed over the received bytes.
        computed: u64,
    },
    /// Structurally invalid payload (bad tag, bad UTF-8, inconsistent
    /// lengths).
    Malformed(
        /// What was malformed.
        &'static str,
    ),
    /// The snapshot's transformed state was produced under a different
    /// Derby transform than the target lane's — resuming would compute
    /// garbage.
    TransformMismatch {
        /// Digest the snapshot was stamped with.
        snapshot: u64,
        /// Digest of the target lane's transform.
        lane: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { need, have } => {
                write!(f, "snapshot truncated: need {need} bytes, have {have}")
            }
            CheckpointError::BadMagic(m) => write!(f, "bad snapshot magic {m:02x?}"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "snapshot envelope CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            CheckpointError::TransformMismatch { snapshot, lane } => write!(
                f,
                "snapshot transform digest {snapshot:#018x} does not match lane {lane:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What a higher layer should do about a failed restore. Cluster
/// migration reacts differently to damaged bytes (retransfer the
/// snapshot and retry) than to an intact-but-unrunnable snapshot
/// (route it to a compatible shard or declare the stream lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreDisposition {
    /// The bytes were damaged in transit or storage (truncation, bad
    /// magic, envelope CRC mismatch): the original snapshot may still
    /// be intact at the source — retransfer and retry.
    RetryTransfer,
    /// The snapshot decoded (or failed) with a valid envelope but
    /// cannot run here: wrong version, wrong Derby transform, wrong
    /// widths. Retrying the same bytes on the same host cannot succeed.
    Incompatible,
}

impl CheckpointError {
    /// Classifies this failure for retry-vs-declare-lost decisions
    /// (see [`RestoreDisposition`]).
    ///
    /// `Malformed` classifies as [`RestoreDisposition::Incompatible`]:
    /// it is only reachable *after* the envelope CRC verified, so the
    /// bytes arrived exactly as encoded and retrying cannot help.
    #[must_use]
    pub fn disposition(&self) -> RestoreDisposition {
        match self {
            CheckpointError::Truncated { .. }
            | CheckpointError::BadMagic(_)
            | CheckpointError::CrcMismatch { .. } => RestoreDisposition::RetryTransfer,
            CheckpointError::BadVersion(_)
            | CheckpointError::Malformed(_)
            | CheckpointError::TransformMismatch { .. } => RestoreDisposition::Incompatible,
        }
    }
}

fn envelope_crc(bytes: &[u8]) -> u64 {
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").expect("catalogue entry");
    crc_bitwise(spec, bytes)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bits(out: &mut Vec<u8>, bits: &BitVec) {
    put_u32(out, u32::try_from(bits.len()).expect("bit length fits u32"));
    out.extend_from_slice(&bits.to_le_bytes());
}

/// Sequential little-endian reader over the payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Truncated {
                need: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bits(&mut self) -> Result<BitVec, CheckpointError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len.div_ceil(8))?;
        Ok(BitVec::from_le_bytes(bytes, len))
    }
}

impl StreamCheckpoint {
    /// Serializes the snapshot into the guarded envelope.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let mut payload = Vec::new();
        payload.push(match self.kind {
            StreamKind::Crc => 0u8,
            StreamKind::Scrambler => 1u8,
        });
        payload.push(match self.priority {
            Priority::Low => 0u8,
            Priority::High => 1u8,
        });
        payload.push(u8::from(self.plain_domain));
        put_u32(
            &mut payload,
            u32::try_from(self.name.len()).expect("name fits"),
        );
        payload.extend_from_slice(self.name.as_bytes());
        put_u64(&mut payload, self.t_digest);
        put_u64(&mut payload, self.deadline);
        put_u64(&mut payload, self.bytes_fed);
        put_bits(&mut payload, &self.state);
        put_bits(&mut payload, &self.staged);
        put_bits(&mut payload, &self.out_pending);
        put_u32(
            &mut payload,
            u32::try_from(self.queued.len()).expect("queue fits"),
        );
        for chunk in &self.queued {
            put_u32(
                &mut payload,
                u32::try_from(chunk.len()).expect("chunk fits"),
            );
            payload.extend_from_slice(chunk);
        }
        put_u32(
            &mut out,
            u32::try_from(payload.len()).expect("payload fits"),
        );
        out.extend_from_slice(&payload);
        let crc = envelope_crc(&out);
        out.extend_from_slice(&u32::try_from(crc).expect("32-bit CRC").to_le_bytes());
        out
    }

    /// Validates the envelope and decodes the snapshot.
    ///
    /// # Errors
    ///
    /// Every structural defect maps to a distinct [`CheckpointError`];
    /// any single corrupted byte fails at least the CRC check.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 14 {
            return Err(CheckpointError::Truncated {
                need: 14,
                have: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let payload_len = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes")) as usize;
        let total = 10 + payload_len + 4;
        if bytes.len() != total {
            return Err(CheckpointError::Truncated {
                need: total,
                have: bytes.len(),
            });
        }
        let stored = u64::from(u32::from_le_bytes(
            bytes[total - 4..].try_into().expect("4 bytes"),
        ));
        let computed = envelope_crc(&bytes[..total - 4]);
        if stored != computed {
            return Err(CheckpointError::CrcMismatch { stored, computed });
        }

        let mut r = Reader {
            buf: &bytes[10..total - 4],
            pos: 0,
        };
        let kind = match r.u8()? {
            0 => StreamKind::Crc,
            1 => StreamKind::Scrambler,
            _ => return Err(CheckpointError::Malformed("stream kind tag")),
        };
        let priority = match r.u8()? {
            0 => Priority::Low,
            1 => Priority::High,
            _ => return Err(CheckpointError::Malformed("priority tag")),
        };
        let plain_domain = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Malformed("domain tag")),
        };
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::Malformed("personality name UTF-8"))?
            .to_string();
        let t_digest = r.u64()?;
        let deadline = r.u64()?;
        let bytes_fed = r.u64()?;
        let state = r.bits()?;
        let staged = r.bits()?;
        let out_pending = r.bits()?;
        let n_queued = r.u32()? as usize;
        let mut queued = Vec::with_capacity(n_queued.min(1024));
        for _ in 0..n_queued {
            let len = r.u32()? as usize;
            queued.push(r.take(len)?.to_vec());
        }
        if r.pos != r.buf.len() {
            return Err(CheckpointError::Malformed("trailing payload bytes"));
        }
        Ok(StreamCheckpoint {
            name,
            kind,
            priority,
            deadline,
            plain_domain,
            t_digest,
            state,
            staged,
            out_pending,
            queued,
            bytes_fed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StreamCheckpoint {
        StreamCheckpoint {
            name: "eth32".into(),
            kind: StreamKind::Crc,
            priority: Priority::High,
            deadline: 17,
            plain_domain: false,
            t_digest: 0xDEAD_BEEF_CAFE_F00D,
            state: BitVec::from_u64(0x1234_5678, 32),
            staged: BitVec::from_u64(0b1011, 4),
            out_pending: BitVec::zeros(0),
            queued: vec![vec![1, 2, 3], vec![]],
            bytes_fed: 99,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cp = sample();
        assert_eq!(StreamCheckpoint::decode(&cp.encode()).unwrap(), cp);
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                StreamCheckpoint::decode(&bad).is_err(),
                "corruption at byte {i} slipped through"
            );
        }
        for cut in 0..bytes.len() {
            assert!(
                StreamCheckpoint::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes slipped through"
            );
        }
    }

    #[test]
    fn envelope_defects_are_typed() {
        let good = sample().encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            StreamCheckpoint::decode(&bad),
            Err(CheckpointError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            StreamCheckpoint::decode(&bad),
            Err(CheckpointError::BadVersion(_))
        ));

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            StreamCheckpoint::decode(&bad),
            Err(CheckpointError::CrcMismatch { .. })
        ));

        assert!(matches!(
            StreamCheckpoint::decode(&good[..5]),
            Err(CheckpointError::Truncated { .. })
        ));
    }
}
