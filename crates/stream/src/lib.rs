//! # stream — fault-tolerant multi-stream serving on the DREAM fabric
//!
//! The paper's applications are one-shot: a message goes in, a CRC or a
//! scrambled frame comes out. A deployed device serves differently:
//! thousands of logical streams interleave on one fabric, chunks arrive
//! in arbitrary sizes at arbitrary times, load spikes, and — per the
//! resilience layer — the fabric underneath can break mid-stream. This
//! crate is the serving layer that keeps every stream correct anyway
//! (DESIGN.md §8):
//!
//! * [`session`] — per-stream bookkeeping: an LFSR state in either the
//!   fabric's transformed (`T`-domain) space or the software kernel's
//!   plain space, residual-bit staging between the byte-oriented client
//!   interface and the fabric's M-bit block granularity, and a bounded
//!   chunk queue.
//! * [`checkpoint`] — serializable snapshots of live sessions. The
//!   state travels in the domain it lives in, stamped with the Derby
//!   transform digest so a snapshot can only rehydrate onto a lane
//!   whose transform matches (re-synthesis preserves the transform, so
//!   repaired and replacement lanes both qualify); a version- and
//!   CRC-guarded binary envelope rejects corrupt bytes.
//! * [`admission`] — token-bucket admission, bounded per-stream and
//!   global queues, and a typed overload ladder (reject new work →
//!   degrade low-priority streams to software → checkpoint-and-park
//!   idle streams) with hysteresis so the service doesn't flap.
//! * [`pump`] — the pump scheduling policy behind the
//!   [`pump::BatchScheduler`] trait (EDF by default), extracted so
//!   every shard of a multi-fabric cluster shares one pump
//!   implementation.
//! * [`service`] — [`service::StreamService`]: the deadline-aware pump
//!   that drains queues through the fabric in transactional batches.
//!   Every batch is guarded by a scrub + probe; on detection the batch
//!   rolls back to its pre-batch states, the recovery ladder runs, and
//!   the batch re-runs wherever [`resilience::MigrationAdvice`] says —
//!   which is what keeps delivered digests exact under fault injection.
//! * [`storm`] — the seeded, deterministic stress harness behind the
//!   `stream_storm` binary: interleaved multi-client traffic, fault
//!   injection and a forced overload window, with every completed
//!   stream checked against a software oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod checkpoint;
pub mod pump;
pub mod service;
pub mod session;
pub mod storm;

pub use admission::{AdmissionConfig, OverloadLevel, ServiceCounters, TokenBucket};
pub use checkpoint::{CheckpointError, RestoreDisposition, StreamCheckpoint};
pub use pump::{BatchScheduler, EdfScheduler, PumpCandidate};
pub use service::{ServiceError, StreamOutput, StreamProgress, StreamService};
pub use session::{Priority, StreamKind};
pub use storm::{run_storm, StormConfig, StormReport};
