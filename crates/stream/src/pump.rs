//! The pump scheduler, extracted behind a trait.
//!
//! The transactional pump in [`crate::service::StreamService`] has two
//! separable concerns: *which* queued chunks to advance this tick
//! (scheduling) and *how* to advance them safely (the transaction /
//! guard / rollback machinery). This module owns the first. The
//! scheduling decision is behind [`BatchScheduler`] so every shard of a
//! multi-fabric cluster — and, later, an async reactor front-end —
//! shares one pump implementation while remaining free to swap
//! policies.
//!
//! The default policy, [`EdfScheduler`], reproduces the original
//! in-line pump exactly: earliest deadline first, one chunk per stream
//! per round, rounds until the budget is spent or every queue is empty.
//! Determinism is part of the trait contract: a scheduler must be a
//! pure function of the candidate list and budget, so seeded campaigns
//! replay byte-identically.

use std::fmt;

/// One pumpable stream as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PumpCandidate {
    /// The stream's id.
    pub id: u64,
    /// Absolute deadline tick (the EDF key).
    pub deadline: u64,
    /// Chunks currently queued on this stream (always ≥ 1 here).
    pub queued_chunks: usize,
}

/// A deterministic pump schedule policy.
///
/// Implementations MUST be pure functions of `(candidates, budget)`:
/// no wall clocks, no interior randomness — the storm campaigns and
/// the cluster bench gate on byte-identical replays.
pub trait BatchScheduler: fmt::Debug {
    /// Returns the stream ids to pump this tick, in service order, at
    /// most `budget` entries. An id may appear once per chunk the
    /// scheduler wants pumped; ids not in `candidates` and picks beyond
    /// a stream's `queued_chunks` are ignored by the pump.
    fn plan(&mut self, candidates: &[PumpCandidate], budget: usize) -> Vec<u64>;

    /// Stable policy name for traces and reports.
    fn name(&self) -> &'static str;
}

/// Earliest-deadline-first, one chunk per stream per round — the
/// serving layer's default policy (identical to the pre-extraction
/// in-line pump).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfScheduler;

impl BatchScheduler for EdfScheduler {
    fn plan(&mut self, candidates: &[PumpCandidate], budget: usize) -> Vec<u64> {
        let mut order: Vec<(u64, u64, usize)> = candidates
            .iter()
            .map(|c| (c.deadline, c.id, c.queued_chunks))
            .collect();
        order.sort_unstable();
        let mut picks = Vec::new();
        let mut remaining = budget;
        loop {
            let mut popped = false;
            for entry in &mut order {
                if remaining == 0 {
                    return picks;
                }
                if entry.2 == 0 {
                    continue;
                }
                entry.2 -= 1;
                picks.push(entry.1);
                remaining -= 1;
                popped = true;
            }
            if !popped {
                return picks;
            }
        }
    }

    fn name(&self) -> &'static str {
        "edf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, deadline: u64, queued: usize) -> PumpCandidate {
        PumpCandidate {
            id,
            deadline,
            queued_chunks: queued,
        }
    }

    #[test]
    fn edf_orders_by_deadline_then_id_one_chunk_per_round() {
        let mut s = EdfScheduler;
        let picks = s.plan(&[cand(3, 9, 2), cand(1, 5, 1), cand(2, 5, 2)], 10);
        // Round 1: deadlines 5,5,9 → ids 1,2,3; round 2: 2,3 (1 empty).
        assert_eq!(picks, vec![1, 2, 3, 2, 3]);
    }

    #[test]
    fn edf_respects_budget() {
        let mut s = EdfScheduler;
        let picks = s.plan(&[cand(1, 5, 4), cand(2, 6, 4)], 3);
        assert_eq!(picks, vec![1, 2, 1]);
    }

    #[test]
    fn edf_is_deterministic() {
        let mut s = EdfScheduler;
        let cands = [cand(7, 2, 3), cand(4, 2, 1), cand(9, 1, 2)];
        assert_eq!(s.plan(&cands, 6), s.plan(&cands, 6));
    }
}
