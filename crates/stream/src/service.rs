//! The stream service: deadline-aware pumping, transactional fault
//! handling, checkpoint/park/resume, and the overload ladder's actions.
//!
//! ## Why batches are transactions
//!
//! The fabric can break *between* any two blocks of a stream, and a
//! scrub only detects it after the fact. The pump therefore treats
//! every batch of chunks as a transaction:
//!
//! 1. snapshot the pre-batch state of every involved session — the
//!    previous batch's guard proved those states clean;
//! 2. run the batch;
//! 3. guard: scrub the configuration memory and probe the personality
//!    with a known-answer message;
//! 4. on detection, roll every session back to its pre-batch state, run
//!    the recovery ladder, and re-run the batch wherever
//!    [`MigrationAdvice`] points — the repaired lane, the software
//!    kernel (after marshalling the states out of the transformed
//!    domain), or nowhere (checkpoint and park, losing no bytes).
//!
//! No state that was ever exposed to a detected fault survives, which
//! is what makes the storm campaign's digest-mismatch count stay zero.

use crate::admission::{AdmissionConfig, OverloadLevel, ServiceCounters, TokenBucket};
use crate::checkpoint::{CheckpointError, RestoreDisposition, StreamCheckpoint, NO_TRANSFORM};
use crate::pump::{BatchScheduler, EdfScheduler, PumpCandidate};
use crate::session::{Domain, Priority, StreamKind, StreamSession};
use dream::{Health, SystemError};
use dream_lfsr::{build_scrambler_personality, FlowOptions};
use gf2::BitVec;
use lfsr::crc::{finalize_raw, message_bits, CrcSpec};
use lfsr::scramble::ScramblerSpec;
use lfsr::StateSpaceLfsr;
use lfsr_parallel::DerbyTransform;
use obs::{CounterId, EventKind, HistogramId};
use resilience::{MigrationAdvice, ResilienceError, ResilientSystem};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Fabric re-run attempts per batch before the service stops trusting
/// the lane and finishes the batch on the software kernel.
const MAX_FABRIC_ATTEMPTS: usize = 3;

/// One pump batch: `(stream id, chunk)` in service order.
type BatchItems = Vec<(u64, Vec<u8>)>;

/// What a finished stream delivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamOutput {
    /// The final checksum of a CRC stream.
    Crc(u64),
    /// The remaining scrambled bits of a scrambler stream (output
    /// already taken via [`StreamService::collect`] is not repeated).
    Scrambled(BitVec),
}

/// How far a live stream has progressed (see
/// [`StreamService::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Payload bytes already absorbed into the stream's state (pumped
    /// chunks; a snapshot taken now would resume *after* these).
    pub bytes_fed: u64,
    /// Payload bytes accepted but still queued (these travel inside a
    /// snapshot and replay on restore).
    pub queued_bytes: usize,
}

impl StreamProgress {
    /// Total payload bytes a snapshot taken now would carry: a client
    /// replaying the stream re-offers data from this byte offset.
    #[must_use]
    pub fn fed_through(&self) -> u64 {
        self.bytes_fed + self.queued_bytes as u64
    }
}

/// Typed refusals and failures of the serving layer.
#[derive(Debug)]
pub enum ServiceError {
    /// No live session with this id.
    UnknownStream(
        /// The id requested.
        u64,
    ),
    /// No parked snapshot with this id.
    UnknownParked(
        /// The id requested.
        u64,
    ),
    /// No hosted personality with this name (or wrong kind for the
    /// requested stream).
    UnknownPersonality(
        /// The name requested.
        String,
    ),
    /// Open refused: the admission token bucket is empty.
    RejectedByBucket,
    /// Open refused: the overload ladder is at
    /// [`OverloadLevel::RejectNew`] or above.
    RejectedByOverload,
    /// Open (or resume) refused: `max_streams` sessions are live.
    RejectedByCapacity,
    /// Feed refused: this stream's own queue is full.
    StreamQueueFull {
        /// The stream whose queue is full.
        id: u64,
        /// Chunks already queued.
        depth: usize,
    },
    /// Feed refused: the global queued-byte budget is exhausted.
    GlobalQueueFull {
        /// Bytes currently queued service-wide.
        queued: usize,
        /// The configured budget.
        capacity: usize,
    },
    /// The stream was checkpointed and parked mid-operation (recovery
    /// advised [`MigrationAdvice::Park`]); resume it later.
    StreamParked(
        /// The parked stream's id.
        u64,
    ),
    /// The underlying system refused an operation.
    System(SystemError),
    /// Hosting or recovery failed.
    Resilience(ResilienceError),
    /// A snapshot failed to decode or rehydrate.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownStream(id) => write!(f, "unknown stream {id}"),
            ServiceError::UnknownParked(id) => write!(f, "no parked stream {id}"),
            ServiceError::UnknownPersonality(name) => {
                write!(f, "no hosted personality {name:?} for this stream kind")
            }
            ServiceError::RejectedByBucket => write!(f, "open rejected: admission bucket empty"),
            ServiceError::RejectedByOverload => {
                write!(f, "open rejected: service is shedding new work")
            }
            ServiceError::RejectedByCapacity => {
                write!(f, "open rejected: session capacity reached")
            }
            ServiceError::StreamQueueFull { id, depth } => {
                write!(f, "stream {id} queue full ({depth} chunks)")
            }
            ServiceError::GlobalQueueFull { queued, capacity } => {
                write!(f, "global queue full ({queued}/{capacity} bytes)")
            }
            ServiceError::StreamParked(id) => {
                write!(f, "stream {id} was checkpointed and parked by recovery")
            }
            ServiceError::System(e) => write!(f, "system error: {e}"),
            ServiceError::Resilience(e) => write!(f, "resilience error: {e}"),
            ServiceError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::System(e) => Some(e),
            ServiceError::Resilience(e) => Some(e),
            ServiceError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl ServiceError {
    /// How a failed [`StreamService::restore`] should be handled by a
    /// higher layer (a cluster migrating streams between shards).
    ///
    /// All snapshot-validation failures flow through the single typed
    /// [`ServiceError::Checkpoint`] variant and classify as either
    /// [`RestoreDisposition::RetryTransfer`] (the bytes were damaged —
    /// retransfer the original snapshot) or
    /// [`RestoreDisposition::Incompatible`] (the snapshot is intact but
    /// cannot run on this host — route it elsewhere or declare the
    /// stream lost). A personality this host does not serve is likewise
    /// `Incompatible`. Returns `None` for errors that are not about the
    /// snapshot at all (capacity refusals, unknown ids), which the
    /// caller handles through its own admission logic.
    #[must_use]
    pub fn restore_disposition(&self) -> Option<RestoreDisposition> {
        match self {
            ServiceError::Checkpoint(e) => Some(e.disposition()),
            ServiceError::UnknownPersonality(_) => Some(RestoreDisposition::Incompatible),
            _ => None,
        }
    }
}

impl From<SystemError> for ServiceError {
    fn from(e: SystemError) -> Self {
        ServiceError::System(e)
    }
}

impl From<ResilienceError> for ServiceError {
    fn from(e: ResilienceError) -> Self {
        ServiceError::Resilience(e)
    }
}

impl From<CheckpointError> for ServiceError {
    fn from(e: CheckpointError) -> Self {
        ServiceError::Checkpoint(e)
    }
}

/// Cached facts about a hosted personality the hot path needs without
/// re-asking the system.
#[derive(Debug, Clone)]
struct Hosted {
    kind: StreamKind,
    m: usize,
    state_bits: usize,
    crc_spec: Option<CrcSpec>,
    t_digest: u64,
}

/// Pre-batch image of one session, for transactional rollback.
struct SessionSnap {
    id: u64,
    domain: Domain,
    state: BitVec,
    staged: BitVec,
    out_pending_len: usize,
    bytes_fed: u64,
}

/// The reason a stream is being parked (drives distinct counters).
enum ParkReason {
    Idle,
    Fault,
    Explicit,
}

/// Registry handles for every service decision counter plus the
/// queue-depth histogram. All `service.*` metrics live in the unified
/// registry owned by the fabric simulator underneath.
#[derive(Debug, Clone, Copy)]
struct SvcIds {
    opened: CounterId,
    completed: CounterId,
    rejected_admission: CounterId,
    rejected_overload: CounterId,
    rejected_capacity: CounterId,
    rejected_queue_full: CounterId,
    rejected_global_full: CounterId,
    degraded_low_priority: CounterId,
    parked_idle: CounterId,
    parked_fault: CounterId,
    resumed: CounterId,
    checkpoints: CounterId,
    restores: CounterId,
    fault_rollbacks: CounterId,
    batch_reruns: CounterId,
    migrated_to_software: CounterId,
    chunks_processed: CounterId,
    level_transitions: CounterId,
    detached: CounterId,
    queue_depth: HistogramId,
    live_sessions: obs::GaugeId,
    queued_bytes: obs::GaugeId,
}

impl SvcIds {
    fn register(reg: &mut obs::MetricsRegistry) -> Self {
        SvcIds {
            opened: reg.counter("service.opened"),
            completed: reg.counter("service.completed"),
            rejected_admission: reg.counter("service.rejected_admission"),
            rejected_overload: reg.counter("service.rejected_overload"),
            rejected_capacity: reg.counter("service.rejected_capacity"),
            rejected_queue_full: reg.counter("service.rejected_queue_full"),
            rejected_global_full: reg.counter("service.rejected_global_full"),
            degraded_low_priority: reg.counter("service.degraded_low_priority"),
            parked_idle: reg.counter("service.parked_idle"),
            parked_fault: reg.counter("service.parked_fault"),
            resumed: reg.counter("service.resumed"),
            checkpoints: reg.counter("service.checkpoints"),
            restores: reg.counter("service.restores"),
            fault_rollbacks: reg.counter("service.fault_rollbacks"),
            batch_reruns: reg.counter("service.batch_reruns"),
            migrated_to_software: reg.counter("service.migrated_to_software"),
            chunks_processed: reg.counter("service.chunks_processed"),
            level_transitions: reg.counter("service.level_transitions"),
            detached: reg.counter("service.detached"),
            queue_depth: reg.histogram("service.queue_depth", &obs::Histogram::pow2_bounds(16)),
            live_sessions: reg.gauge("service.live_sessions"),
            queued_bytes: reg.gauge("service.queued_bytes"),
        }
    }
}

/// A session-oriented, fault-tolerant streaming front-end over a
/// [`ResilientSystem`].
#[derive(Debug)]
pub struct StreamService {
    rs: ResilientSystem,
    cfg: AdmissionConfig,
    bucket: TokenBucket,
    level: OverloadLevel,
    /// Live sessions. A `BTreeMap` so every iteration order — and
    /// therefore every campaign — is deterministic.
    sessions: BTreeMap<u64, StreamSession>,
    /// Parked snapshots, by the id the stream had when parked.
    parked: BTreeMap<u64, Vec<u8>>,
    hosted: HashMap<String, Hosted>,
    /// Software kernels per personality (serial state-space engines).
    soft: HashMap<String, StateSpaceLfsr>,
    next_id: u64,
    now: u64,
    global_queued_bytes: usize,
    ids: SvcIds,
    sched: Box<dyn BatchScheduler>,
}

impl StreamService {
    /// A service over `rs` with the given admission configuration and
    /// the default EDF pump scheduler.
    #[must_use]
    pub fn new(rs: ResilientSystem, cfg: AdmissionConfig) -> Self {
        Self::with_scheduler(rs, cfg, Box::new(EdfScheduler))
    }

    /// A service with an explicit pump scheduling policy (see
    /// [`BatchScheduler`]).
    #[must_use]
    pub fn with_scheduler(
        mut rs: ResilientSystem,
        cfg: AdmissionConfig,
        sched: Box<dyn BatchScheduler>,
    ) -> Self {
        let bucket = TokenBucket::new(cfg.bucket_capacity, cfg.bucket_refill);
        let ids = SvcIds::register(&mut rs.obs_mut().registry);
        StreamService {
            rs,
            cfg,
            bucket,
            level: OverloadLevel::Normal,
            sessions: BTreeMap::new(),
            parked: BTreeMap::new(),
            hosted: HashMap::new(),
            soft: HashMap::new(),
            next_id: 1,
            now: 0,
            global_queued_bytes: 0,
            ids,
            sched,
        }
    }

    /// The active pump scheduling policy's name.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// The wrapped resilient system.
    pub fn system(&self) -> &ResilientSystem {
        &self.rs
    }

    /// Mutable access to the wrapped system (fault injection).
    pub fn system_mut(&mut self) -> &mut ResilientSystem {
        &mut self.rs
    }

    /// Cumulative decision counters, assembled as a view over the
    /// unified metrics registry.
    pub fn counters(&self) -> ServiceCounters {
        let reg = &self.rs.obs().registry;
        ServiceCounters {
            opened: reg.counter_value(self.ids.opened),
            completed: reg.counter_value(self.ids.completed),
            rejected_admission: reg.counter_value(self.ids.rejected_admission),
            rejected_overload: reg.counter_value(self.ids.rejected_overload),
            rejected_capacity: reg.counter_value(self.ids.rejected_capacity),
            rejected_queue_full: reg.counter_value(self.ids.rejected_queue_full),
            rejected_global_full: reg.counter_value(self.ids.rejected_global_full),
            degraded_low_priority: reg.counter_value(self.ids.degraded_low_priority),
            parked_idle: reg.counter_value(self.ids.parked_idle),
            parked_fault: reg.counter_value(self.ids.parked_fault),
            resumed: reg.counter_value(self.ids.resumed),
            checkpoints: reg.counter_value(self.ids.checkpoints),
            restores: reg.counter_value(self.ids.restores),
            fault_rollbacks: reg.counter_value(self.ids.fault_rollbacks),
            batch_reruns: reg.counter_value(self.ids.batch_reruns),
            migrated_to_software: reg.counter_value(self.ids.migrated_to_software),
            chunks_processed: reg.counter_value(self.ids.chunks_processed),
            level_transitions: reg.counter_value(self.ids.level_transitions),
            detached: reg.counter_value(self.ids.detached),
        }
    }

    /// Snapshot of the service-wide queue-depth histogram (one sample
    /// per tick, recorded before the pump runs).
    pub fn queue_depth_stats(&self) -> obs::HistogramSnapshot {
        self.rs
            .obs()
            .registry
            .histogram_ref(self.ids.queue_depth)
            .snapshot()
    }

    /// The observability hub (registry, tracer, fabric profiler).
    pub fn obs(&self) -> &obs::ObsHub {
        self.rs.obs()
    }

    /// Mutable access to the observability hub.
    pub fn obs_mut(&mut self) -> &mut obs::ObsHub {
        self.rs.obs_mut()
    }

    /// Bumps one of this service's registry counters.
    fn bump(&mut self, id: CounterId) {
        self.rs.obs_mut().registry.inc(id);
    }

    /// The ladder's current level.
    pub fn level(&self) -> OverloadLevel {
        self.level
    }

    /// Live (non-parked) sessions.
    pub fn live_streams(&self) -> usize {
        self.sessions.len()
    }

    /// Ids of parked streams, ascending.
    pub fn parked_ids(&self) -> Vec<u64> {
        self.parked.keys().copied().collect()
    }

    /// Ids of live (non-parked) sessions, ascending.
    pub fn stream_ids(&self) -> Vec<u64> {
        self.sessions.keys().copied().collect()
    }

    /// Whether `id` names a live (non-parked) session.
    #[must_use]
    pub fn is_live(&self, id: u64) -> bool {
        self.sessions.contains_key(&id)
    }

    /// Whether `id` names a parked snapshot.
    #[must_use]
    pub fn is_parked(&self, id: u64) -> bool {
        self.parked.contains_key(&id)
    }

    /// Total queued chunks across all live sessions.
    pub fn queue_depth_total(&self) -> usize {
        self.sessions.values().map(StreamSession::queue_depth).sum()
    }

    /// Total queued payload bytes across all live sessions.
    pub fn queued_bytes(&self) -> usize {
        self.global_queued_bytes
    }

    /// Hosts a CRC personality (built through the full flow) for
    /// streaming, and prepares its software kernel.
    ///
    /// # Errors
    ///
    /// Build or registration failures as [`ServiceError::Resilience`].
    pub fn host_crc(
        &mut self,
        name: &str,
        spec: &CrcSpec,
        opts: FlowOptions,
    ) -> Result<(), ServiceError> {
        self.rs.host(name, spec, opts)?;
        let t_digest = self
            .rs
            .system()
            .crc_derby(name)
            .map_or(NO_TRANSFORM, DerbyTransform::digest);
        let m = self
            .rs
            .system()
            .stream_block_bits(name)
            .expect("just hosted");
        self.hosted.insert(
            name.to_string(),
            Hosted {
                kind: StreamKind::Crc,
                m,
                state_bits: spec.width,
                crc_spec: Some(*spec),
                t_digest,
            },
        );
        let serial = StateSpaceLfsr::crc(&spec.generator()).map_err(|source| {
            ServiceError::System(SystemError::BadSpec {
                name: name.to_string(),
                source,
            })
        })?;
        self.soft.insert(name.to_string(), serial);
        Ok(())
    }

    /// Hosts a scrambler personality for streaming, and prepares its
    /// software kernel.
    ///
    /// # Errors
    ///
    /// Build or registration failures.
    pub fn host_scrambler(
        &mut self,
        name: &str,
        spec: &ScramblerSpec,
        opts: &FlowOptions,
    ) -> Result<(), ServiceError> {
        let p = build_scrambler_personality(name.to_string(), spec, opts)
            .map_err(ResilienceError::from)?;
        self.rs.system_mut().register_scrambler(p)?;
        let t_digest = self
            .rs
            .system()
            .scrambler_derby(name)
            .map_or(NO_TRANSFORM, DerbyTransform::digest);
        self.hosted.insert(
            name.to_string(),
            Hosted {
                kind: StreamKind::Scrambler,
                m: opts.m,
                state_bits: spec.width,
                crc_spec: None,
                t_digest,
            },
        );
        let serial = StateSpaceLfsr::additive_scrambler(&spec.polynomial()).map_err(|source| {
            ServiceError::System(SystemError::BadSpec {
                name: name.to_string(),
                source,
            })
        })?;
        self.soft.insert(name.to_string(), serial);
        Ok(())
    }

    fn admit(&mut self, name: &str) -> Result<(), ServiceError> {
        if self.level >= OverloadLevel::RejectNew {
            self.bump(self.ids.rejected_overload);
            self.rs.obs_mut().event_for(
                None,
                Some(name),
                EventKind::StreamShed { reason: "overload" },
            );
            return Err(ServiceError::RejectedByOverload);
        }
        if self.sessions.len() >= self.cfg.max_streams {
            self.bump(self.ids.rejected_capacity);
            self.rs.obs_mut().event_for(
                None,
                Some(name),
                EventKind::StreamShed { reason: "capacity" },
            );
            return Err(ServiceError::RejectedByCapacity);
        }
        if !self.bucket.try_take() {
            self.bump(self.ids.rejected_admission);
            self.rs.obs_mut().event_for(
                None,
                Some(name),
                EventKind::StreamShed {
                    reason: "admission",
                },
            );
            return Err(ServiceError::RejectedByBucket);
        }
        Ok(())
    }

    fn insert_session(&mut self, s: StreamSession) -> u64 {
        let id = self.next_id;
        let name = s.name.clone();
        self.next_id += 1;
        self.sessions.insert(id, s);
        self.bump(self.ids.opened);
        self.rs
            .obs_mut()
            .event_for(Some(id), Some(&name), EventKind::StreamAdmit);
        id
    }

    /// Opens a CRC stream on `name`, due `deadline_in` ticks from now.
    ///
    /// # Errors
    ///
    /// Admission refusals ([`ServiceError::RejectedByBucket`] /
    /// [`ServiceError::RejectedByOverload`] /
    /// [`ServiceError::RejectedByCapacity`]) or an unknown personality.
    pub fn open_crc(
        &mut self,
        name: &str,
        priority: Priority,
        deadline_in: u64,
    ) -> Result<u64, ServiceError> {
        let hosted = self
            .hosted
            .get(name)
            .filter(|h| h.kind == StreamKind::Crc)
            .ok_or_else(|| ServiceError::UnknownPersonality(name.to_string()))?
            .clone();
        self.admit(name)?;
        let state = self.rs.system().crc_stream_begin(name)?;
        debug_assert_eq!(state.len(), hosted.state_bits);
        Ok(self.insert_session(StreamSession {
            name: name.to_string(),
            kind: StreamKind::Crc,
            priority,
            deadline: self.now + deadline_in,
            domain: Domain::Fabric,
            state,
            staged: BitVec::zeros(0),
            out_pending: BitVec::zeros(0),
            queue: VecDeque::new(),
            queued_bytes: 0,
            bytes_fed: 0,
            last_active: self.now,
        }))
    }

    /// Opens a scrambler stream on `name` seeded with `seed`.
    ///
    /// # Errors
    ///
    /// As [`StreamService::open_crc`], plus
    /// [`SystemError::BadSeed`] for seeds wider than the register.
    pub fn open_scrambler(
        &mut self,
        name: &str,
        seed: u64,
        priority: Priority,
        deadline_in: u64,
    ) -> Result<u64, ServiceError> {
        self.hosted
            .get(name)
            .filter(|h| h.kind == StreamKind::Scrambler)
            .ok_or_else(|| ServiceError::UnknownPersonality(name.to_string()))?;
        self.admit(name)?;
        let state = self.rs.system().scramble_stream_begin(name, seed)?;
        Ok(self.insert_session(StreamSession {
            name: name.to_string(),
            kind: StreamKind::Scrambler,
            priority,
            deadline: self.now + deadline_in,
            domain: Domain::Fabric,
            state,
            staged: BitVec::zeros(0),
            out_pending: BitVec::zeros(0),
            queue: VecDeque::new(),
            queued_bytes: 0,
            bytes_fed: 0,
            last_active: self.now,
        }))
    }

    /// Queues a chunk on a stream. The chunk is not processed until a
    /// [`StreamService::tick`] pumps it (or [`StreamService::finish`]
    /// drains it).
    ///
    /// # Errors
    ///
    /// [`ServiceError::StreamQueueFull`] /
    /// [`ServiceError::GlobalQueueFull`] when a bound is hit — the
    /// caller owns retry policy.
    pub fn feed(&mut self, id: u64, chunk: &[u8]) -> Result<(), ServiceError> {
        let now = self.now;
        let per_stream = self.cfg.per_stream_queue_chunks;
        let global_cap = self.cfg.global_queue_bytes;
        let global = self.global_queued_bytes;
        let depth = self
            .sessions
            .get(&id)
            .ok_or(ServiceError::UnknownStream(id))?
            .queue
            .len();
        if chunk.is_empty() {
            return Ok(());
        }
        if depth >= per_stream {
            self.bump(self.ids.rejected_queue_full);
            self.rs.obs_mut().event_for(
                Some(id),
                None,
                EventKind::StreamShed {
                    reason: "queue_full",
                },
            );
            return Err(ServiceError::StreamQueueFull { id, depth });
        }
        if global + chunk.len() > global_cap {
            self.bump(self.ids.rejected_global_full);
            self.rs.obs_mut().event_for(
                Some(id),
                None,
                EventKind::StreamShed {
                    reason: "global_full",
                },
            );
            return Err(ServiceError::GlobalQueueFull {
                queued: global,
                capacity: global_cap,
            });
        }
        let session = self.sessions.get_mut(&id).expect("checked above");
        session.queue.push_back(chunk.to_vec());
        session.queued_bytes += chunk.len();
        session.last_active = now;
        self.global_queued_bytes += chunk.len();
        Ok(())
    }

    /// Takes the scrambled output produced so far for a stream.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`].
    pub fn collect(&mut self, id: u64) -> Result<BitVec, ServiceError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServiceError::UnknownStream(id))?;
        Ok(std::mem::replace(
            &mut session.out_pending,
            BitVec::zeros(0),
        ))
    }

    /// One service tick: refill the admission bucket, move the overload
    /// ladder, apply its rungs (degrade / park), and pump queued chunks
    /// in deadline order under the configured budget.
    ///
    /// # Errors
    ///
    /// Propagates system and recovery errors (typed refusals never come
    /// from `tick`).
    pub fn tick(&mut self) -> Result<(), ServiceError> {
        self.now += 1;
        self.bucket.tick();
        let depth = self.queue_depth_total() as u64;
        let queue_depth = self.ids.queue_depth;
        self.rs.obs_mut().registry.observe(queue_depth, depth);
        let (live_g, bytes_g) = (self.ids.live_sessions, self.ids.queued_bytes);
        let (live, queued) = (self.sessions.len(), self.global_queued_bytes);
        let reg = &mut self.rs.obs_mut().registry;
        reg.set_gauge(live_g, i64::try_from(live).unwrap_or(i64::MAX));
        reg.set_gauge(bytes_g, i64::try_from(queued).unwrap_or(i64::MAX));
        let occupancy_pct = u32::try_from(
            (self.global_queued_bytes as u64) * 100 / (self.cfg.global_queue_bytes as u64).max(1),
        )
        .unwrap_or(u32::MAX);
        let next = self.cfg.next_level(self.level, occupancy_pct);
        if next != self.level {
            self.bump(self.ids.level_transitions);
            self.rs.obs_mut().event(EventKind::LevelTransition {
                from: self.level.name(),
                to: next.name(),
            });
            self.level = next;
        }
        if self.level >= OverloadLevel::DegradeLowPriority {
            let victims: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| s.priority == Priority::Low && s.domain == Domain::Fabric)
                .map(|(id, _)| *id)
                .collect();
            for id in victims {
                self.degrade(id)?;
                self.bump(self.ids.degraded_low_priority);
            }
        }
        if self.level >= OverloadLevel::ParkIdle {
            let idle: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| {
                    s.queue.is_empty() && s.last_active + self.cfg.idle_grace_ticks < self.now
                })
                .map(|(id, _)| *id)
                .collect();
            for id in idle {
                self.park_internal(id, &ParkReason::Idle)?;
            }
        }
        self.pump(self.cfg.pump_budget_chunks)
    }

    /// Migrates a stream to the software kernel: the state is
    /// marshalled out of the transformed domain (`x = T·x_t`), staged
    /// residual bits are absorbed bit-serially, and all further feeds
    /// run on the control processor. A no-op for streams already in
    /// software.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`] / marshalling errors.
    pub fn degrade(&mut self, id: u64) -> Result<(), ServiceError> {
        let session = self
            .sessions
            .get(&id)
            .ok_or(ServiceError::UnknownStream(id))?;
        if session.domain == Domain::Software {
            return Ok(());
        }
        let (name, kind, state, staged) = (
            session.name.clone(),
            session.kind,
            session.state.clone(),
            session.staged.clone(),
        );
        let plain = self.rs.system().export_stream_state(&name, &state)?;
        let engine = self.soft.get_mut(&name).expect("hosted implies kernel");
        engine.set_state(plain);
        let emitted = match kind {
            StreamKind::Crc => {
                engine.absorb(&staged);
                BitVec::zeros(0)
            }
            StreamKind::Scrambler => engine.transduce(&staged),
        };
        let new_state = engine.state().clone();
        let session = self.sessions.get_mut(&id).expect("checked above");
        session.state = new_state;
        session.staged = BitVec::zeros(0);
        session.out_pending = session.out_pending.concat(&emitted);
        session.domain = Domain::Software;
        self.rs
            .obs_mut()
            .event_for(Some(id), Some(&name), EventKind::Degrade);
        Ok(())
    }

    /// Finishes a stream: drains its queue (transactionally, like the
    /// pump), finalizes per domain, and removes the session.
    ///
    /// # Errors
    ///
    /// [`ServiceError::StreamParked`] if recovery parked the stream
    /// while draining — resume it and call `finish` again.
    pub fn finish(&mut self, id: u64) -> Result<StreamOutput, ServiceError> {
        // Drain everything still queued, in order, as one batch.
        let (name, items) = {
            let session = self
                .sessions
                .get_mut(&id)
                .ok_or(ServiceError::UnknownStream(id))?;
            let mut items = Vec::new();
            while let Some(chunk) = session.queue.pop_front() {
                session.queued_bytes -= chunk.len();
                items.push((id, chunk));
            }
            (session.name.clone(), items)
        };
        for (_, chunk) in &items {
            self.global_queued_bytes -= chunk.len();
        }
        if !items.is_empty() {
            self.transact(&name, &items)?;
        }
        if !self.sessions.contains_key(&id) {
            // Recovery parked the stream while draining; nothing lost.
            return Err(ServiceError::StreamParked(id));
        }

        let session = self.sessions.get(&id).expect("checked above");
        let (kind, domain, state, staged) = (
            session.kind,
            session.domain,
            session.state.clone(),
            session.staged.clone(),
        );
        let out = match (kind, domain) {
            (StreamKind::Crc, Domain::Fabric) => {
                let (crc, _) = self
                    .rs
                    .system_mut()
                    .crc_stream_finish(&name, &state, &staged)?;
                // The finalize step ran the anti-transform network on
                // the fabric — guard it like any other fabric work.
                if self.lane_suspect(&name)? {
                    self.bump(self.ids.fault_rollbacks);
                    self.rs.recover(&name)?;
                    StreamOutput::Crc(self.software_crc_finish(&name, &state, &staged)?)
                } else {
                    StreamOutput::Crc(crc)
                }
            }
            (StreamKind::Crc, Domain::Software) => {
                let spec = self.crc_spec_of(&name)?;
                StreamOutput::Crc(finalize_raw(&spec, state.to_u64()))
            }
            (StreamKind::Scrambler, Domain::Fabric) => {
                // Anti-transform and tail transduction are host-side
                // matrix math — no fabric exposure, no guard needed.
                let (tail, _) = self
                    .rs
                    .system_mut()
                    .scramble_stream_finish(&name, &state, &staged)?;
                let session = self.sessions.get(&id).expect("checked above");
                StreamOutput::Scrambled(session.out_pending.concat(&tail))
            }
            (StreamKind::Scrambler, Domain::Software) => {
                let session = self.sessions.get(&id).expect("checked above");
                StreamOutput::Scrambled(session.out_pending.clone())
            }
        };
        self.sessions.remove(&id);
        self.bump(self.ids.completed);
        self.rs
            .obs_mut()
            .event_for(Some(id), Some(&name), EventKind::StreamComplete);
        Ok(out)
    }

    /// The authoritative software path for a CRC finalize: marshal the
    /// transformed state out, absorb the residue serially, apply the
    /// output conventions.
    fn software_crc_finish(
        &mut self,
        name: &str,
        x_t: &BitVec,
        staged: &BitVec,
    ) -> Result<u64, ServiceError> {
        let spec = self.crc_spec_of(name)?;
        let plain = self.rs.system().export_stream_state(name, x_t)?;
        let engine = self.soft.get_mut(name).expect("hosted implies kernel");
        engine.set_state(plain);
        engine.absorb(staged);
        Ok(finalize_raw(&spec, engine.state().to_u64()))
    }

    fn crc_spec_of(&self, name: &str) -> Result<CrcSpec, ServiceError> {
        self.hosted
            .get(name)
            .and_then(|h| h.crc_spec)
            .ok_or_else(|| ServiceError::UnknownPersonality(name.to_string()))
    }

    /// Serializes a snapshot of a live stream (the stream keeps
    /// running).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`].
    pub fn checkpoint(&mut self, id: u64) -> Result<Vec<u8>, ServiceError> {
        let session = self
            .sessions
            .get(&id)
            .ok_or(ServiceError::UnknownStream(id))?;
        let hosted = self.hosted.get(&session.name).expect("session is hosted");
        let plain_domain = session.domain == Domain::Software;
        let cp = StreamCheckpoint {
            name: session.name.clone(),
            kind: session.kind,
            priority: session.priority,
            deadline: session.deadline,
            plain_domain,
            t_digest: if plain_domain {
                NO_TRANSFORM
            } else {
                hosted.t_digest
            },
            state: session.state.clone(),
            staged: session.staged.clone(),
            out_pending: session.out_pending.clone(),
            queued: session.queue.iter().cloned().collect(),
            bytes_fed: session.bytes_fed,
        };
        self.bump(self.ids.checkpoints);
        Ok(cp.encode())
    }

    /// Progress marker of a live stream: how many payload bytes a
    /// client would have to re-offer if the stream were resumed from a
    /// snapshot taken *right now* (`bytes_fed` are absorbed into the
    /// state, queued bytes travel inside the snapshot).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`].
    pub fn progress(&self, id: u64) -> Result<StreamProgress, ServiceError> {
        let s = self
            .sessions
            .get(&id)
            .ok_or(ServiceError::UnknownStream(id))?;
        Ok(StreamProgress {
            bytes_fed: s.bytes_fed,
            queued_bytes: s.queued_bytes,
        })
    }

    /// Checkpoints a live stream, removes its session (freeing
    /// capacity), and returns the snapshot bytes — the source half of a
    /// cross-shard migration. Unlike [`StreamService::park`], the
    /// snapshot is **not** retained here; the caller owns it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`].
    pub fn detach(&mut self, id: u64) -> Result<Vec<u8>, ServiceError> {
        let bytes = self.checkpoint(id)?;
        let session = self.sessions.remove(&id).expect("checkpoint proved it");
        self.global_queued_bytes -= session.queued_bytes;
        self.bump(self.ids.detached);
        self.rs
            .obs_mut()
            .event_for(Some(id), Some(&session.name), EventKind::StreamDetach);
        Ok(bytes)
    }

    /// The retained snapshot of a parked stream, if `id` is parked.
    #[must_use]
    pub fn parked_snapshot(&self, id: u64) -> Option<&[u8]> {
        self.parked.get(&id).map(Vec::as_slice)
    }

    /// Removes a parked stream's snapshot and returns it — the source
    /// half of migrating a *parked* stream to another shard.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownParked`].
    pub fn take_parked(&mut self, id: u64) -> Result<Vec<u8>, ServiceError> {
        let bytes = self
            .parked
            .remove(&id)
            .ok_or(ServiceError::UnknownParked(id))?;
        self.bump(self.ids.detached);
        self.rs
            .obs_mut()
            .event_for(Some(id), None, EventKind::StreamDetach);
        Ok(bytes)
    }

    /// Checkpoints a stream and parks it: the session leaves the live
    /// set (freeing capacity) and its snapshot is retained for
    /// [`StreamService::resume`].
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownStream`].
    pub fn park(&mut self, id: u64) -> Result<(), ServiceError> {
        self.park_internal(id, &ParkReason::Explicit)
    }

    fn park_internal(&mut self, id: u64, reason: &ParkReason) -> Result<(), ServiceError> {
        let bytes = self.checkpoint(id)?;
        let session = self.sessions.remove(&id).expect("checkpoint proved it");
        self.global_queued_bytes -= session.queued_bytes;
        self.parked.insert(id, bytes);
        let label = match reason {
            ParkReason::Idle => {
                self.bump(self.ids.parked_idle);
                "idle"
            }
            ParkReason::Fault => {
                self.bump(self.ids.parked_fault);
                "fault"
            }
            ParkReason::Explicit => "explicit",
        };
        self.rs.obs_mut().event_for(
            Some(id),
            Some(&session.name),
            EventKind::StreamPark { reason: label },
        );
        Ok(())
    }

    /// Rehydrates a parked stream under its original id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownParked`], capacity refusals, or snapshot
    /// validation failures.
    pub fn resume(&mut self, id: u64) -> Result<(), ServiceError> {
        let bytes = self
            .parked
            .get(&id)
            .cloned()
            .ok_or(ServiceError::UnknownParked(id))?;
        let cp = StreamCheckpoint::decode(&bytes)?;
        self.rehydrate(cp, id)?;
        self.parked.remove(&id);
        self.bump(self.ids.resumed);
        self.rs
            .obs_mut()
            .event_for(Some(id), None, EventKind::StreamResume);
        Ok(())
    }

    /// Rehydrates an external snapshot as a new stream, returning its
    /// id.
    ///
    /// # Errors
    ///
    /// Snapshot validation failures — including
    /// [`CheckpointError::TransformMismatch`] when the snapshot's
    /// transformed state does not belong to the hosted lane's
    /// transform.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<u64, ServiceError> {
        let cp = StreamCheckpoint::decode(bytes)?;
        let id = self.next_id;
        // Allocate the id only once rehydration succeeds, so failed
        // restores (corrupt or incompatible snapshots) don't burn ids
        // and a retry lands on the id the caller expects.
        self.rehydrate(cp, id)?;
        self.next_id += 1;
        Ok(id)
    }

    fn rehydrate(&mut self, cp: StreamCheckpoint, id: u64) -> Result<(), ServiceError> {
        let hosted = self
            .hosted
            .get(&cp.name)
            .filter(|h| h.kind == cp.kind)
            .ok_or_else(|| ServiceError::UnknownPersonality(cp.name.clone()))?
            .clone();
        if self.sessions.len() >= self.cfg.max_streams {
            self.bump(self.ids.rejected_capacity);
            self.rs.obs_mut().event_for(
                Some(id),
                None,
                EventKind::StreamShed { reason: "capacity" },
            );
            return Err(ServiceError::RejectedByCapacity);
        }
        if !cp.plain_domain && cp.t_digest != hosted.t_digest {
            return Err(CheckpointError::TransformMismatch {
                snapshot: cp.t_digest,
                lane: hosted.t_digest,
            }
            .into());
        }
        if cp.state.len() != hosted.state_bits {
            return Err(CheckpointError::Malformed("state width").into());
        }
        if !cp.plain_domain && cp.staged.len() >= hosted.m {
            return Err(CheckpointError::Malformed("staged residue too wide").into());
        }
        if cp.plain_domain && !cp.staged.is_empty() {
            return Err(CheckpointError::Malformed("software snapshot with staged bits").into());
        }
        let queued_bytes: usize = cp.queued.iter().map(Vec::len).sum();
        let session = StreamSession {
            name: cp.name,
            kind: cp.kind,
            priority: cp.priority,
            deadline: cp.deadline.max(self.now),
            domain: if cp.plain_domain {
                Domain::Software
            } else {
                Domain::Fabric
            },
            state: cp.state,
            staged: cp.staged,
            out_pending: cp.out_pending,
            queue: cp.queued.into(),
            queued_bytes,
            bytes_fed: cp.bytes_fed,
            last_active: self.now,
        };
        self.global_queued_bytes += queued_bytes;
        self.sessions.insert(id, session);
        self.bump(self.ids.restores);
        Ok(())
    }

    /// Pumps up to `budget` chunks in the order the configured
    /// [`BatchScheduler`] plans (EDF by default), grouped into
    /// per-personality transactional batches.
    fn pump(&mut self, budget: usize) -> Result<(), ServiceError> {
        let candidates: Vec<PumpCandidate> = self
            .sessions
            .iter()
            .filter(|(_, s)| !s.queue.is_empty())
            .map(|(id, s)| PumpCandidate {
                id: *id,
                deadline: s.deadline,
                queued_chunks: s.queue.len(),
            })
            .collect();
        if candidates.is_empty() {
            return Ok(());
        }
        let picks = self.sched.plan(&candidates, budget);
        let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
        for id in picks.into_iter().take(budget) {
            let Some(session) = self.sessions.get_mut(&id) else {
                continue; // scheduler named a stream that is not live
            };
            if let Some(chunk) = session.queue.pop_front() {
                session.queued_bytes -= chunk.len();
                self.global_queued_bytes -= chunk.len();
                batch.push((id, chunk));
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        // Group by personality, preserving first-appearance order.
        let mut groups: Vec<(String, BatchItems)> = Vec::new();
        for (id, chunk) in batch {
            let name = self.sessions.get(&id).expect("still live").name.clone();
            match groups.iter_mut().find(|(n, _)| *n == name) {
                Some((_, items)) => items.push((id, chunk)),
                None => groups.push((name, vec![(id, chunk)])),
            }
        }
        for (name, items) in groups {
            self.transact(&name, &items)?;
        }
        Ok(())
    }

    /// Runs one per-personality batch as a transaction (see the module
    /// docs). On a guard detection: rollback, recover, and follow the
    /// migration advice.
    fn transact(&mut self, name: &str, items: &[(u64, Vec<u8>)]) -> Result<(), ServiceError> {
        let mut involved: Vec<u64> = items.iter().map(|(id, _)| *id).collect();
        involved.sort_unstable();
        involved.dedup();
        let pre: Vec<SessionSnap> = involved
            .iter()
            .map(|id| {
                let s = self.sessions.get(id).expect("batch built from live set");
                SessionSnap {
                    id: *id,
                    domain: s.domain,
                    state: s.state.clone(),
                    staged: s.staged.clone(),
                    out_pending_len: s.out_pending.len(),
                    bytes_fed: s.bytes_fed,
                }
            })
            .collect();

        for attempt in 0..MAX_FABRIC_ATTEMPTS {
            let mut used_fabric = false;
            for (id, chunk) in items {
                used_fabric |= self.process_chunk(*id, chunk)?;
            }
            if !used_fabric || !self.lane_suspect(name)? {
                let chunks = self.ids.chunks_processed;
                self.rs.obs_mut().registry.add(chunks, items.len() as u64);
                let now = self.now;
                for id in &involved {
                    if let Some(s) = self.sessions.get_mut(id) {
                        s.last_active = now;
                    }
                }
                return Ok(());
            }

            // Detection: nothing this batch produced can be trusted.
            self.bump(self.ids.fault_rollbacks);
            self.rollback(&pre);
            self.rs.obs_mut().event_for(
                None,
                Some(name),
                EventKind::BatchRollback {
                    streams: involved.len() as u64,
                },
            );
            let outcome = self.rs.recover(name)?;
            match outcome.migration_advice() {
                MigrationAdvice::StayFabric => {
                    // The lane is repaired; re-run from the clean
                    // pre-batch states. If repairs keep failing, the
                    // loop bottoms out in a software migration below.
                    self.bump(self.ids.batch_reruns);
                    if attempt + 1 == MAX_FABRIC_ATTEMPTS {
                        self.migrate_involved(&involved)?;
                    }
                }
                MigrationAdvice::MarshalToSoftware => {
                    self.bump(self.ids.batch_reruns);
                    self.migrate_involved(&involved)?;
                }
                MigrationAdvice::Park => {
                    // Give the bytes back to the queues (front, in
                    // order) and park every involved stream.
                    for (id, chunk) in items.iter().rev() {
                        let s = self.sessions.get_mut(id).expect("rolled back");
                        s.queued_bytes += chunk.len();
                        self.global_queued_bytes += chunk.len();
                        s.queue.push_front(chunk.clone());
                    }
                    for id in &involved {
                        self.park_internal(*id, &ParkReason::Fault)?;
                    }
                    return Ok(());
                }
            }
        }
        // Final attempt after forced software migration cannot touch
        // the fabric, so it cannot fail the guard.
        for (id, chunk) in items {
            self.process_chunk(*id, chunk)?;
        }
        let chunks = self.ids.chunks_processed;
        self.rs.obs_mut().registry.add(chunks, items.len() as u64);
        Ok(())
    }

    fn migrate_involved(&mut self, involved: &[u64]) -> Result<(), ServiceError> {
        for id in involved {
            let fabric = self
                .sessions
                .get(id)
                .is_some_and(|s| s.domain == Domain::Fabric);
            if fabric {
                self.degrade(*id)?;
                self.bump(self.ids.migrated_to_software);
            }
        }
        Ok(())
    }

    fn rollback(&mut self, pre: &[SessionSnap]) {
        for snap in pre {
            let s = self
                .sessions
                .get_mut(&snap.id)
                .expect("involved stays live");
            s.domain = snap.domain;
            s.state = snap.state.clone();
            s.staged = snap.staged.clone();
            s.out_pending = s.out_pending.slice(0, snap.out_pending_len);
            s.bytes_fed = snap.bytes_fed;
        }
    }

    /// Guard verdict for one personality after a fabric batch: the
    /// scrub re-proves every resident configuration against its
    /// pristine registration (complete for configuration upsets), and
    /// the affine datapath sweep re-proves the physical array against
    /// the resident configuration (complete for stuck-at cells in the
    /// XOR fault model). Together they leave no silent corruption
    /// channel — a sampled known-answer probe alone can be fooled by a
    /// stuck cell its probe data happens not to excite.
    fn lane_suspect(&mut self, name: &str) -> Result<bool, ServiceError> {
        let flagged = self
            .rs
            .system_mut()
            .scrub()
            .iter()
            .any(|f| f.personality == name);
        if flagged {
            return Ok(true);
        }
        Ok(!self.rs.system_mut().datapath_probe(name)?)
    }

    /// Advances one session by one chunk. Returns whether the fabric
    /// was used (and therefore whether the batch needs a guard).
    fn process_chunk(&mut self, id: u64, chunk: &[u8]) -> Result<bool, ServiceError> {
        let (name, kind, mut domain) = {
            let s = self
                .sessions
                .get(&id)
                .ok_or(ServiceError::UnknownStream(id))?;
            (s.name.clone(), s.kind, s.domain)
        };
        // A lane retired to software fallback must not be fed on the
        // fabric; late sessions migrate the moment they are pumped.
        if domain == Domain::Fabric && self.rs.system().health(&name) == Health::Fallback {
            self.degrade(id)?;
            self.bump(self.ids.migrated_to_software);
            domain = Domain::Software;
        }
        let m = self.hosted.get(&name).expect("session is hosted").m;
        let (state, staged) = {
            let s = self.sessions.get(&id).expect("checked above");
            (s.state.clone(), s.staged.clone())
        };
        let incoming = match kind {
            StreamKind::Crc => {
                let spec = self.crc_spec_of(&name)?;
                message_bits(&spec, chunk)
            }
            StreamKind::Scrambler => BitVec::from_le_bytes(chunk, chunk.len() * 8),
        };

        let (new_state, new_staged, emitted, used_fabric) = match domain {
            Domain::Fabric => {
                let all = staged.concat(&incoming);
                let full = all.len() / m * m;
                let blocks = all.slice(0, full);
                let rest = all.slice(full, all.len() - full);
                match kind {
                    StreamKind::Crc => {
                        let ns = if full > 0 {
                            self.rs
                                .system_mut()
                                .crc_stream_feed(&name, &state, &blocks)?
                        } else {
                            state
                        };
                        (ns, rest, BitVec::zeros(0), full > 0)
                    }
                    StreamKind::Scrambler => {
                        let (out, ns) = if full > 0 {
                            self.rs
                                .system_mut()
                                .scramble_stream_feed(&name, &state, &blocks)?
                        } else {
                            (BitVec::zeros(0), state)
                        };
                        (ns, rest, out, full > 0)
                    }
                }
            }
            Domain::Software => {
                let engine = self.soft.get_mut(&name).expect("hosted implies kernel");
                engine.set_state(state);
                let out = match kind {
                    StreamKind::Crc => {
                        engine.absorb(&incoming);
                        BitVec::zeros(0)
                    }
                    StreamKind::Scrambler => engine.transduce(&incoming),
                };
                (engine.state().clone(), BitVec::zeros(0), out, false)
            }
        };
        let s = self.sessions.get_mut(&id).expect("checked above");
        s.state = new_state;
        s.staged = new_staged;
        s.out_pending = s.out_pending.concat(&emitted);
        s.bytes_fed += chunk.len() as u64;
        Ok(used_fabric)
    }
}
