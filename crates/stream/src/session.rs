//! Per-stream session state.
//!
//! A session is the unit the service schedules, checkpoints and
//! migrates. Its LFSR state lives in exactly one of two domains:
//!
//! * **Fabric** — the transformed (`T`-domain) state the PiCoGA
//!   computes in. Feeds advance it in whole M-bit blocks; bits that do
//!   not yet fill a block wait in `staged`.
//! * **Software** — the plain state the serial kernels understand.
//!   Feeds are absorbed immediately, bit by bit, so `staged` is always
//!   empty in this domain.
//!
//! The invariants keep migration trivial: fabric → software absorbs the
//! staged residue and anti-transforms; software → fabric re-transforms
//! and starts staging again.

use gf2::BitVec;
use std::collections::VecDeque;

/// What a stream computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// A running CRC; [`crate::service::StreamService::finish`] delivers
    /// the checksum.
    Crc,
    /// An additive scrambler; output bits are delivered incrementally.
    Scrambler,
}

/// Scheduling class of a stream. Low-priority streams are the first to
/// be degraded to the software kernel under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Degraded first under overload.
    Low,
    /// Kept on the fabric as long as possible.
    High,
}

/// Which engine currently advances a session's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Domain {
    /// Transformed state, advanced in M-bit blocks on the PiCoGA.
    Fabric,
    /// Plain state, advanced bit-serially on the control processor.
    Software,
}

/// One live logical stream.
#[derive(Debug, Clone)]
pub(crate) struct StreamSession {
    pub(crate) name: String,
    pub(crate) kind: StreamKind,
    pub(crate) priority: Priority,
    /// Absolute tick by which queued chunks should be drained — the
    /// EDF scheduling key.
    pub(crate) deadline: u64,
    pub(crate) domain: Domain,
    /// Transformed state when `domain == Fabric`, plain state otherwise.
    pub(crate) state: BitVec,
    /// Refin-adjusted message bits (CRC) or raw frame bits (scrambler)
    /// waiting for a full M-bit block. Empty in the software domain.
    pub(crate) staged: BitVec,
    /// Scrambler output not yet collected by the client.
    pub(crate) out_pending: BitVec,
    /// Chunks accepted by `feed` but not yet pumped.
    pub(crate) queue: VecDeque<Vec<u8>>,
    pub(crate) queued_bytes: usize,
    pub(crate) bytes_fed: u64,
    /// Tick of the last feed or pump touching this session — the
    /// idleness signal for the park rung of the overload ladder.
    pub(crate) last_active: u64,
}

impl StreamSession {
    pub(crate) fn queue_depth(&self) -> usize {
        self.queue.len()
    }
}
