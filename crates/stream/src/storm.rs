//! Seeded multi-client stress harness ("stream storm").
//!
//! One deterministic simulation interleaves everything the serving
//! layer must survive at once: staggered stream arrivals across several
//! personalities, arbitrary chunk sizes, a forced overload window of
//! spiking arrivals, random fabric fault injection (SEU wire flips and
//! physical stuck cells), parking and resuming, and a final drain. Every
//! completed stream's digest is compared against a pure-software oracle
//! — the campaign passes only when **zero** streams mismatch.
//!
//! All randomness flows from one [`SplitMix64`] seeded by the config,
//! and every service structure iterates deterministically, so two runs
//! with the same seed render byte-identical reports (CI asserts this).

use crate::admission::{AdmissionConfig, ServiceCounters};
use crate::service::{ServiceError, StreamOutput, StreamService};
use crate::session::Priority;
use dream::ControlModel;
use dream_lfsr::FlowOptions;
use gf2::BitVec;
use lfsr::crc::{crc_bitwise, CrcSpec};
use lfsr::scramble::{AdditiveScrambler, ScramblerSpec};
use picoga::PicogaParams;
use resilience::rng::SplitMix64;
use resilience::{FaultInjector, RecoveryPolicy, ResilientSystem};
use std::fmt::Write as _;

/// Shape of one storm campaign.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Logical streams planned (arrivals stop when exhausted).
    pub streams: usize,
    /// Ticks of the main phase (a bounded drain phase follows).
    pub ticks: u64,
    /// Chunk sizes drawn uniformly from this inclusive range (bytes).
    pub chunk_bytes: (usize, usize),
    /// Chunks per stream drawn uniformly from this inclusive range.
    pub chunks_per_stream: (usize, usize),
    /// Per-tick probability of injecting a fabric fault.
    pub fault_prob: f64,
    /// Tick window `[start, end)` with spiking arrivals.
    pub overload_window: (u64, u64),
    /// New streams offered per tick outside the window.
    pub base_arrivals: usize,
    /// New streams offered per tick inside the window.
    pub spike_arrivals: usize,
    /// Look-ahead factors for the hosted CRC-32 personalities.
    pub crc_ms: Vec<usize>,
    /// Look-ahead factor for the hosted 802.11 scrambler personality.
    pub scrambler_m: usize,
    /// Admission and ladder configuration for the service.
    pub admission: AdmissionConfig,
    /// Pass/fail bound on the p99 of the sampled global queue depth.
    pub max_p99_queue_depth: usize,
}

impl StormConfig {
    /// The CI smoke campaign: 1,600 streams over three CRC lanes and a
    /// scrambler lane, with fault injection and an overload window.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        StormConfig {
            seed,
            streams: 1600,
            ticks: 400,
            chunk_bytes: (5, 48),
            chunks_per_stream: (1, 3),
            fault_prob: 0.04,
            overload_window: (100, 160),
            base_arrivals: 4,
            spike_arrivals: 40,
            crc_ms: vec![8, 32, 128],
            scrambler_m: 16,
            admission: AdmissionConfig {
                max_streams: 192,
                global_queue_bytes: 1024,
                bucket_capacity: 64,
                bucket_refill: 24,
                pump_budget_chunks: 10,
                ..AdmissionConfig::default()
            },
            max_p99_queue_depth: 512,
        }
    }

    /// The full campaign: 4,000 streams over four CRC lanes and a
    /// scrambler lane, a longer overload window, and a higher fault
    /// rate.
    #[must_use]
    pub fn full(seed: u64) -> Self {
        StormConfig {
            streams: 4000,
            ticks: 1000,
            fault_prob: 0.05,
            overload_window: (200, 320),
            spike_arrivals: 48,
            crc_ms: vec![8, 32, 64, 128],
            ..Self::smoke(seed)
        }
    }
}

/// What one campaign did and found.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// The seed the campaign ran under.
    pub seed: u64,
    /// Streams planned.
    pub planned: u64,
    /// Streams completed with a delivered digest.
    pub completed: u64,
    /// Streams shed at admission (never opened).
    pub shed: u64,
    /// Streams still unfinished when the drain budget ran out (must be
    /// zero for a pass).
    pub unfinished: u64,
    /// Completed streams whose digest differed from the software oracle
    /// (must be zero, always).
    pub mismatches: u64,
    /// Faults injected into the fabric.
    pub faults_injected: u64,
    /// Ticks actually simulated (main phase + drain).
    pub ticks_run: u64,
    /// p99 of the per-tick global queue depth samples (chunks).
    pub p99_queue_depth: usize,
    /// Maximum observed global queue depth (chunks).
    pub max_queue_depth: usize,
    /// Bound the campaign was graded against.
    pub max_p99_queue_depth: usize,
    /// The service's cumulative decision counters.
    pub counters: ServiceCounters,
    /// Snapshot of the full metrics registry at campaign end
    /// (exports are byte-identical across same-seed runs).
    pub metrics: obs::MetricsSnapshot,
    /// Every metric name registered by the stack during the campaign
    /// (for schema checks against exported reports).
    pub metric_names: Vec<String>,
    /// Rendered event trace at campaign end (byte-identical across
    /// same-seed runs; bounded by the tracer's ring capacity).
    pub trace_log: String,
}

impl StormReport {
    /// Zero mismatches, nothing stranded, and bounded queue depth.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.mismatches == 0
            && self.unfinished == 0
            && self.p99_queue_depth <= self.max_p99_queue_depth
    }

    /// Deterministic text rendering — byte-identical across runs with
    /// the same seed (CI compares two runs with `cmp`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let c = &self.counters;
        let _ = writeln!(s, "stream storm  seed={}", self.seed);
        let _ = writeln!(
            s,
            "streams       planned={} completed={} shed={} unfinished={}",
            self.planned, self.completed, self.shed, self.unfinished
        );
        let _ = writeln!(
            s,
            "correctness   mismatches={} faults_injected={}",
            self.mismatches, self.faults_injected
        );
        let _ = writeln!(
            s,
            "queue         p99={} max={} bound={}",
            self.p99_queue_depth, self.max_queue_depth, self.max_p99_queue_depth
        );
        let _ = writeln!(
            s,
            "admission     opened={} rej_bucket={} rej_overload={} rej_capacity={}",
            c.opened, c.rejected_admission, c.rejected_overload, c.rejected_capacity
        );
        let _ = writeln!(
            s,
            "backpressure  rej_stream_queue={} rej_global_queue={}",
            c.rejected_queue_full, c.rejected_global_full
        );
        let _ = writeln!(
            s,
            "ladder        degraded_low={} parked_idle={} parked_fault={} resumed={} transitions={}",
            c.degraded_low_priority, c.parked_idle, c.parked_fault, c.resumed, c.level_transitions
        );
        let _ = writeln!(
            s,
            "recovery      rollbacks={} reruns={} migrated_to_software={}",
            c.fault_rollbacks, c.batch_reruns, c.migrated_to_software
        );
        let _ = writeln!(
            s,
            "snapshots     checkpoints={} restores={}",
            c.checkpoints, c.restores
        );
        let _ = writeln!(
            s,
            "throughput    chunks={} ticks={} completed_streams={}",
            c.chunks_processed, self.ticks_run, c.completed
        );
        let _ = writeln!(
            s,
            "verdict       {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        s
    }
}

/// One planned logical stream.
struct Plan {
    personality: String,
    is_crc: bool,
    seed: u64,
    priority: Priority,
    data: Vec<u8>,
    /// Chunk boundaries (prefix sums, last == data.len()).
    cuts: Vec<usize>,
    arrive_tick: u64,
}

/// Live client-side bookkeeping for an opened stream.
struct Client {
    plan: usize,
    id: u64,
    next_cut: usize,
    fed_all: bool,
    parked: bool,
    collected: BitVec,
}

fn gen_plans(cfg: &StormConfig, rng: &mut SplitMix64, names: &[(String, bool)]) -> Vec<Plan> {
    let arrivals_at = |tick: u64| {
        let in_window = tick >= cfg.overload_window.0 && tick < cfg.overload_window.1;
        if in_window {
            cfg.spike_arrivals.max(1)
        } else {
            cfg.base_arrivals.max(1)
        }
    };
    let mut tick = 1u64;
    let mut slots_left = arrivals_at(tick);
    let mut plans = Vec::with_capacity(cfg.streams);
    for _ in 0..cfg.streams {
        while slots_left == 0 {
            tick += 1;
            slots_left = arrivals_at(tick);
        }
        slots_left -= 1;
        let (name, is_crc) = names[rng.below(names.len())].clone();
        let n_chunks = cfg.chunks_per_stream.0
            + rng.below(cfg.chunks_per_stream.1 - cfg.chunks_per_stream.0 + 1);
        let mut data = Vec::new();
        let mut cuts = Vec::new();
        for _ in 0..n_chunks {
            let len = cfg.chunk_bytes.0 + rng.below(cfg.chunk_bytes.1 - cfg.chunk_bytes.0 + 1);
            for _ in 0..len {
                data.push((rng.next_u64() & 0xFF) as u8);
            }
            cuts.push(data.len());
        }
        plans.push(Plan {
            personality: name,
            is_crc,
            seed: rng.next_u64() & 0x7F, // within any scrambler register
            priority: if rng.chance(0.3) {
                Priority::High
            } else {
                Priority::Low
            },
            data,
            cuts,
            arrive_tick: tick,
        });
    }
    plans
}

fn inject_random_fault(
    service: &mut StreamService,
    inj: &mut FaultInjector,
    faults_injected: &mut u64,
) {
    // Pick a resident context to corrupt; prefer wire flips (SEUs),
    // occasionally a physical stuck cell.
    let stuck = inj.rng().chance(0.15);
    let resident: Vec<usize> = (0..16)
        .filter(|&slot| service.system().system().fabric().context(slot).is_some())
        .collect();
    if resident.is_empty() {
        return;
    }
    let slot = resident[inj.rng().below(resident.len())];
    let op = service
        .system()
        .system()
        .fabric()
        .context(slot)
        .expect("listed above")
        .clone();
    let fault = if stuck {
        inj.random_stuck_cell(&op)
    } else {
        inj.random_wire_flip(slot, &op)
    };
    if let Some(fault) = fault {
        if service
            .system_mut()
            .system_mut()
            .fabric_mut()
            .inject(&fault)
            .is_ok()
        {
            *faults_injected += 1;
        }
    }
}

fn oracle_matches(plan: &Plan, collected: &BitVec, out: &StreamOutput) -> bool {
    if plan.is_crc {
        let spec = CrcSpec::by_name("CRC-32/ETHERNET").expect("catalogue entry");
        match out {
            StreamOutput::Crc(got) => *got == crc_bitwise(spec, &plan.data),
            StreamOutput::Scrambled(_) => false,
        }
    } else {
        let spec = ScramblerSpec::ieee80211();
        let mut reference = AdditiveScrambler::with_seed(spec, plan.seed).expect("valid seed");
        let frame = BitVec::from_le_bytes(&plan.data, plan.data.len() * 8);
        let expected = reference.scramble(&frame);
        match out {
            StreamOutput::Scrambled(tail) => collected.concat(tail) == expected,
            StreamOutput::Crc(_) => false,
        }
    }
}

/// Runs one storm campaign.
///
/// # Errors
///
/// Propagates hosting, system and recovery errors; admission refusals
/// and queue backpressure are handled (and counted) internally.
///
/// # Panics
///
/// Panics if the configuration hosts no personalities
/// (`crc_ms` empty and no scrambler).
pub fn run_storm(cfg: &StormConfig) -> Result<StormReport, ServiceError> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut inj = FaultInjector::new(rng.fork().next_u64());

    let rs = ResilientSystem::new(
        PicogaParams::dream(),
        ControlModel::default(),
        RecoveryPolicy::stream_serving(),
    );
    let mut service = StreamService::new(rs, cfg.admission);
    let eth = *CrcSpec::by_name("CRC-32/ETHERNET").expect("catalogue entry");
    let mut names: Vec<(String, bool)> = Vec::new();
    for &m in &cfg.crc_ms {
        let name = format!("eth{m}");
        service.host_crc(&name, &eth, FlowOptions::dream_with_m(m))?;
        names.push((name, true));
    }
    if cfg.scrambler_m > 0 {
        let name = format!("wifi{}", cfg.scrambler_m);
        service.host_scrambler(
            &name,
            ScramblerSpec::ieee80211(),
            &FlowOptions::dream_with_m(cfg.scrambler_m),
        )?;
        names.push((name, false));
    }
    assert!(!names.is_empty(), "storm needs at least one personality");

    let plans = gen_plans(cfg, &mut rng, &names);
    let mut next_plan = 0usize;
    let mut clients: Vec<Client> = Vec::new();
    // Clients in this harness back off and retry rather than abandon,
    // so nothing is permanently shed; the report keeps the column for
    // harnesses that do give up.
    let shed = 0u64;
    let mut completed = 0u64;
    let mut mismatches = 0u64;
    let mut faults_injected = 0u64;
    let mut tick = 0u64;
    let drain_budget = cfg.ticks + 2000;

    while (completed + shed) < plans.len() as u64 && tick < drain_budget {
        tick += 1;
        let draining = tick > cfg.ticks;

        if rng.chance(cfg.fault_prob) {
            inject_random_fault(&mut service, &mut inj, &mut faults_injected);
        }

        // Arrivals planned for this tick (all overdue ones during
        // drain).
        while next_plan < plans.len() && (plans[next_plan].arrive_tick <= tick || draining) {
            let plan = &plans[next_plan];
            let opened = if plan.is_crc {
                service.open_crc(&plan.personality, plan.priority, 4 + rng.below(8) as u64)
            } else {
                service.open_scrambler(
                    &plan.personality,
                    plan.seed,
                    plan.priority,
                    4 + rng.below(8) as u64,
                )
            };
            match opened {
                Ok(id) => {
                    clients.push(Client {
                        plan: next_plan,
                        id,
                        next_cut: 0,
                        fed_all: false,
                        parked: false,
                        collected: BitVec::zeros(0),
                    });
                    next_plan += 1;
                }
                Err(
                    ServiceError::RejectedByBucket
                    | ServiceError::RejectedByOverload
                    | ServiceError::RejectedByCapacity,
                ) => {
                    // Clients back off and re-offer next tick; the
                    // refusal is already visible in the service
                    // counters. No stream is abandoned.
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        // Feeds: each live client offers its next chunk (always during
        // drain, usually otherwise); backpressure is retried next tick.
        for client in &mut clients {
            if client.fed_all || client.parked {
                continue;
            }
            if !draining && !rng.chance(0.8) {
                continue;
            }
            let plan = &plans[client.plan];
            let start = if client.next_cut == 0 {
                0
            } else {
                plan.cuts[client.next_cut - 1]
            };
            let end = plan.cuts[client.next_cut];
            match service.feed(client.id, &plan.data[start..end]) {
                Ok(()) => {
                    client.next_cut += 1;
                    client.fed_all = client.next_cut == plan.cuts.len();
                }
                Err(
                    ServiceError::StreamQueueFull { .. } | ServiceError::GlobalQueueFull { .. },
                ) => {}
                Err(ServiceError::UnknownStream(_)) => client.parked = true,
                Err(e) => return Err(e),
            }
        }

        // The service samples the offered backlog into its shared
        // queue-depth histogram at the top of every tick, before the
        // pump drains it.
        service.tick()?;

        // Notice service-side parking, collect scrambler output.
        let parked_now = service.parked_ids();
        for client in &mut clients {
            if parked_now.contains(&client.id) {
                client.parked = true;
                continue;
            }
            if client.parked {
                continue;
            }
            if !plans[client.plan].is_crc {
                if let Ok(bits) = service.collect(client.id) {
                    client.collected = client.collected.concat(&bits);
                }
            }
        }

        // Resume parked streams once the service has headroom (always
        // during drain).
        if draining || service.level() < crate::admission::OverloadLevel::RejectNew {
            for client in &mut clients {
                if client.parked && service.resume(client.id).is_ok() {
                    client.parked = false;
                }
            }
        }

        // Finish clients that fed everything.
        let mut finished_ids: Vec<usize> = Vec::new();
        for (ci, client) in clients.iter_mut().enumerate() {
            if !client.fed_all || client.parked {
                continue;
            }
            match service.finish(client.id) {
                Ok(out) => {
                    if !oracle_matches(&plans[client.plan], &client.collected, &out) {
                        mismatches += 1;
                    }
                    completed += 1;
                    finished_ids.push(ci);
                }
                Err(ServiceError::StreamParked(_)) => client.parked = true,
                Err(e) => return Err(e),
            }
        }
        for ci in finished_ids.into_iter().rev() {
            clients.swap_remove(ci);
        }
    }

    let unfinished = plans.len() as u64 - completed - shed;
    let depth = service.queue_depth_stats();
    let p99 = usize::try_from(depth.p99).unwrap_or(usize::MAX);
    let max_depth = usize::try_from(depth.max).unwrap_or(usize::MAX);
    let metrics = service.obs().registry.snapshot();
    let metric_names = service.obs().registry.names();
    let trace_log = service.obs().tracer.render();
    Ok(StormReport {
        seed: cfg.seed,
        planned: plans.len() as u64,
        completed,
        shed,
        unfinished,
        mismatches,
        faults_injected,
        ticks_run: tick,
        p99_queue_depth: p99,
        max_queue_depth: max_depth,
        max_p99_queue_depth: cfg.max_p99_queue_depth,
        counters: service.counters(),
        metrics,
        metric_names,
        trace_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_storm_is_exact_and_deterministic() {
        let cfg = StormConfig {
            streams: 40,
            ticks: 60,
            crc_ms: vec![8, 32],
            scrambler_m: 16,
            fault_prob: 0.1,
            overload_window: (10, 20),
            ..StormConfig::smoke(77)
        };
        let a = run_storm(&cfg).unwrap();
        assert_eq!(
            a.mismatches,
            0,
            "digests must match the oracle:\n{}",
            a.render()
        );
        assert_eq!(
            a.unfinished,
            0,
            "every admitted stream drains:\n{}",
            a.render()
        );
        let b = run_storm(&cfg).unwrap();
        assert_eq!(a.render(), b.render(), "same seed, same campaign");
    }
}
