//! Golden-byte corpus for the v1 checkpoint wire format.
//!
//! The `.bin` files under `tests/corpus/` are committed verbatim and
//! pin the v1 envelope byte-for-byte: any change to the encoder that
//! alters the wire format fails these tests instead of silently
//! stranding previously-parked snapshots. Regenerate (only after a
//! deliberate, version-bumped format change) with
//! `cargo test -p picolfsr-stream --test checkpoint_corpus -- --ignored`.

use dream::ControlModel;
use gf2::BitVec;
use lfsr::scramble::ScramblerSpec;
use picoga::PicogaParams;
use resilience::{RecoveryPolicy, ResilientSystem};
use stream::checkpoint::NO_TRANSFORM;
use stream::{AdmissionConfig, Priority, StreamCheckpoint, StreamKind, StreamService};

/// The corpus: every entry is a fixed snapshot plus the file its golden
/// v1 bytes live in. No randomness — the expected structs are literals.
fn corpus() -> Vec<(&'static str, StreamCheckpoint)> {
    vec![
        (
            "crc_fabric_v1.bin",
            StreamCheckpoint {
                name: "eth32".into(),
                kind: StreamKind::Crc,
                priority: Priority::High,
                deadline: 17,
                plain_domain: false,
                t_digest: 0xDEAD_BEEF_CAFE_F00D,
                state: BitVec::from_u64(0x1234_5678, 32),
                staged: BitVec::from_u64(0b1011, 4),
                out_pending: BitVec::zeros(0),
                queued: vec![vec![1, 2, 3], vec![0xFF; 5]],
                bytes_fed: 99,
            },
        ),
        (
            "crc_plain_v1.bin",
            StreamCheckpoint {
                name: "eth32".into(),
                kind: StreamKind::Crc,
                priority: Priority::Low,
                deadline: 3,
                plain_domain: true,
                t_digest: NO_TRANSFORM,
                state: BitVec::from_u64(0xA5A5_5A5A, 32),
                staged: BitVec::zeros(0),
                out_pending: BitVec::zeros(0),
                queued: vec![vec![7, 8, 9, 10]],
                bytes_fed: 12,
            },
        ),
        (
            "scrambler_plain_v1.bin",
            StreamCheckpoint {
                name: "wifi16".into(),
                kind: StreamKind::Scrambler,
                priority: Priority::High,
                deadline: 25,
                plain_domain: true,
                t_digest: NO_TRANSFORM,
                state: BitVec::from_u64(0b101_1101, 7),
                staged: BitVec::zeros(0),
                out_pending: BitVec::from_u64(0x3C, 8),
                queued: vec![vec![0x11, 0x22]],
                bytes_fed: 4,
            },
        ),
    ]
}

fn golden(file: &str) -> &'static [u8] {
    match file {
        "crc_fabric_v1.bin" => include_bytes!("corpus/crc_fabric_v1.bin"),
        "crc_plain_v1.bin" => include_bytes!("corpus/crc_plain_v1.bin"),
        "scrambler_plain_v1.bin" => include_bytes!("corpus/scrambler_plain_v1.bin"),
        _ => unreachable!("unknown corpus file {file}"),
    }
}

#[test]
fn golden_bytes_decode_to_the_expected_snapshots() {
    for (file, expected) in corpus() {
        let decoded = StreamCheckpoint::decode(golden(file))
            .unwrap_or_else(|e| panic!("{file}: golden bytes must decode: {e}"));
        assert_eq!(decoded, expected, "{file}: decoded snapshot drifted");
    }
}

#[test]
fn encoder_still_emits_the_golden_v1_bytes() {
    for (file, expected) in corpus() {
        assert_eq!(
            expected.encode(),
            golden(file),
            "{file}: encoder no longer produces the committed v1 bytes — \
             this is a wire-format break; bump VERSION instead"
        );
    }
}

/// A plain-domain golden snapshot restores into a live service and, when
/// checkpointed again, reproduces the golden bytes exactly — proving the
/// whole park/resume path is bit-transparent for v1 snapshots.
#[test]
fn golden_plain_snapshots_restore_bit_exactly() {
    let rs = ResilientSystem::new(
        PicogaParams::dream(),
        ControlModel::default(),
        RecoveryPolicy::stream_serving(),
    );
    let mut svc = StreamService::new(rs, AdmissionConfig::default());
    let eth = *lfsr::crc::CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    svc.host_crc("eth32", &eth, dream_lfsr::FlowOptions::dream_with_m(32))
        .unwrap();
    svc.host_scrambler(
        "wifi16",
        ScramblerSpec::ieee80211(),
        &dream_lfsr::FlowOptions::dream_with_m(16),
    )
    .unwrap();

    for file in ["crc_plain_v1.bin", "scrambler_plain_v1.bin"] {
        let bytes = golden(file);
        let id = svc
            .restore(bytes)
            .unwrap_or_else(|e| panic!("{file}: golden snapshot must restore: {e}"));
        let again = svc.checkpoint(id).unwrap();
        assert_eq!(
            again, bytes,
            "{file}: restore → checkpoint must be byte-identical"
        );
    }
}

/// Writes the golden files. Run only after a deliberate format change
/// (and bump [`stream::checkpoint::VERSION`] when the bytes move).
#[test]
#[ignore = "regenerates the committed golden corpus"]
fn regenerate_corpus() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    std::fs::create_dir_all(dir).unwrap();
    for (file, cp) in corpus() {
        std::fs::write(format!("{dir}/{file}"), cp.encode()).unwrap();
    }
}
