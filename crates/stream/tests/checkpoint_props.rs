//! Property tests for the checkpoint/restore path: for random data and
//! random cut points, checkpoint → serialize → deserialize → restore
//! round-trips bit-exactly at every supported block width — including
//! a mid-stream fabric→software migration of the restored replica —
//! and corrupted snapshot bytes are always rejected by the envelope.

use std::cell::RefCell;
use std::collections::HashMap;

use dream::ControlModel;
use dream_lfsr::FlowOptions;
use lfsr::crc::{crc_bitwise, CrcSpec};
use lfsr::scramble::{AdditiveScrambler, ScramblerSpec};
use picoga::PicogaParams;
use proptest::collection;
use proptest::prelude::*;
use resilience::{RecoveryPolicy, ResilientSystem};
use stream::{AdmissionConfig, Priority, StreamCheckpoint, StreamOutput, StreamService};

/// One cached service per block width: personality synthesis dominates
/// the cost of a case, so every case of a property reuses the same
/// fabric (each case finishes the streams it opens).
fn with_service<R>(m: usize, f: impl FnOnce(&mut StreamService) -> R) -> R {
    thread_local! {
        static CACHE: RefCell<HashMap<usize, StreamService>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|c| {
        let mut map = c.borrow_mut();
        let svc = map.entry(m).or_insert_with(|| {
            let rs = ResilientSystem::new(
                PicogaParams::dream(),
                ControlModel::default(),
                RecoveryPolicy::stream_serving(),
            );
            let mut svc = StreamService::new(rs, AdmissionConfig::default());
            let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
            svc.host_crc("eth", spec, FlowOptions::dream_with_m(m))
                .unwrap();
            svc
        });
        f(svc)
    })
}

/// Feed a prefix, checkpoint, restore the snapshot as a replica stream
/// (optionally migrating it to software mid-stream), feed the remainder
/// to both, and require both digests to equal the software oracle.
fn crc_round_trip(
    m: usize,
    data: &[u8],
    cut_pct: usize,
    migrate: bool,
) -> Result<(), TestCaseError> {
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    let oracle = crc_bitwise(spec, data);
    let cut = data.len() * cut_pct / 100;
    with_service(m, |svc| {
        let a = svc.open_crc("eth", Priority::High, 8).unwrap();
        if cut > 0 {
            svc.feed(a, &data[..cut]).unwrap();
            svc.tick().unwrap();
        }
        let bytes = svc.checkpoint(a).unwrap();

        // The wire format itself round-trips byte-for-byte.
        let cp = StreamCheckpoint::decode(&bytes).expect("own snapshot decodes");
        prop_assert_eq!(cp.encode(), bytes.clone());

        let b = svc.restore(&bytes).unwrap();
        if migrate {
            svc.degrade(b).unwrap();
        }
        if cut < data.len() {
            svc.feed(a, &data[cut..]).unwrap();
            svc.feed(b, &data[cut..]).unwrap();
            svc.tick().unwrap();
        }
        for id in [a, b] {
            match svc.finish(id).unwrap() {
                StreamOutput::Crc(got) => prop_assert_eq!(got, oracle),
                other => panic!("CRC stream delivered {other:?}"),
            }
        }
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn checkpoint_round_trips_at_m8(
        data in collection::vec(any::<u8>(), 1..96),
        cut_pct in 0usize..100,
        migrate in any::<bool>(),
    ) {
        crc_round_trip(8, &data, cut_pct, migrate)?;
    }

    #[test]
    fn checkpoint_round_trips_at_m32(
        data in collection::vec(any::<u8>(), 1..96),
        cut_pct in 0usize..100,
        migrate in any::<bool>(),
    ) {
        crc_round_trip(32, &data, cut_pct, migrate)?;
    }

    #[test]
    fn checkpoint_round_trips_at_m128(
        data in collection::vec(any::<u8>(), 1..96),
        cut_pct in 0usize..100,
        migrate in any::<bool>(),
    ) {
        crc_round_trip(128, &data, cut_pct, migrate)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn scrambler_checkpoint_round_trips(
        data in collection::vec(any::<u8>(), 1..64),
        cut_pct in 0usize..100,
        raw_seed in any::<u64>(),
    ) {
        let spec = ScramblerSpec::ieee80211();
        let seed = raw_seed & 0x7F; // keep within the 7-bit state
        let cut = data.len() * cut_pct / 100;
        let mut oracle = AdditiveScrambler::with_seed(spec, seed).unwrap();
        let frame = gf2::BitVec::from_le_bytes(&data, data.len() * 8);
        let want = oracle.scramble(&frame);

        let rs = ResilientSystem::new(
            PicogaParams::dream(),
            ControlModel::default(),
            RecoveryPolicy::stream_serving(),
        );
        let mut svc = StreamService::new(rs, AdmissionConfig::default());
        svc.host_scrambler("wifi", spec, &FlowOptions::dream_with_m(16))
            .unwrap();

        let a = svc.open_scrambler("wifi", seed, Priority::High, 8).unwrap();
        if cut > 0 {
            svc.feed(a, &data[..cut]).unwrap();
            svc.tick().unwrap();
        }
        let bytes = svc.checkpoint(a).unwrap();
        let b = svc.restore(&bytes).unwrap();
        if cut < data.len() {
            svc.feed(a, &data[cut..]).unwrap();
            svc.feed(b, &data[cut..]).unwrap();
            svc.tick().unwrap();
        }
        for id in [a, b] {
            match svc.finish(id).unwrap() {
                StreamOutput::Scrambled(got) => prop_assert_eq!(got.clone(), want.clone()),
                other => panic!("scrambler delivered {other:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn corrupted_snapshots_are_always_rejected(
        data in collection::vec(any::<u8>(), 1..64),
        pos_pct in 0usize..100,
        bit in 0u32..8,
    ) {
        let snapshot = with_service(32, |svc| {
            let id = svc.open_crc("eth", Priority::Low, 8).unwrap();
            svc.feed(id, &data).unwrap();
            svc.tick().unwrap();
            let bytes = svc.checkpoint(id).unwrap();
            svc.finish(id).unwrap();
            bytes
        });

        let pos = snapshot.len() * pos_pct / 100;
        let pos = pos.min(snapshot.len() - 1);
        let mut corrupt = snapshot.clone();
        corrupt[pos] ^= 1u8 << bit;
        prop_assert!(
            StreamCheckpoint::decode(&corrupt).is_err(),
            "bit {} of byte {} flipped undetected",
            bit,
            pos
        );
        with_service(32, |svc| {
            prop_assert!(svc.restore(&corrupt).is_err(), "service accepted a corrupt snapshot");
            Ok(())
        })?;
    }
}
