//! Cross-check: the model checker's abstract overload ladder
//! ([`analyze::LadderParams`]) must compute exactly the same step
//! function as the real [`stream::AdmissionConfig::next_level`] — the
//! model-checking verdicts are only as good as the model's fidelity,
//! so drift between the two is a test failure here, not a silent
//! soundness hole there.

use analyze::LadderParams;
use proptest::prelude::*;
use stream::{AdmissionConfig, OverloadLevel};

fn mirror(cfg: &AdmissionConfig) -> LadderParams {
    LadderParams {
        reject_enter_pct: cfg.reject_enter_pct,
        degrade_enter_pct: cfg.degrade_enter_pct,
        park_enter_pct: cfg.park_enter_pct,
        exit_margin_pct: cfg.exit_margin_pct,
    }
}

#[test]
fn default_ladder_agrees_exhaustively() {
    let cfg = AdmissionConfig::default();
    let model = mirror(&cfg);
    assert_eq!(
        model,
        LadderParams::serving_defaults(),
        "the model's serving_defaults must track AdmissionConfig::default"
    );
    for rank in 0u8..=3 {
        for occ in 0u32..=150 {
            let real = cfg.next_level(OverloadLevel::from_rank(rank), occ).rank();
            let abs = model.next_level(rank, occ);
            assert_eq!(real, abs, "rank {rank}, occupancy {occ}%");
        }
    }
}

proptest! {
    /// Arbitrary (even unordered) thresholds, margins and occupancies:
    /// the two step functions stay pointwise identical.
    #[test]
    fn ladder_mirror_matches_for_arbitrary_thresholds(
        reject in 0u32..121,
        degrade in 0u32..121,
        park in 0u32..121,
        margin in 0u32..51,
        rank in 0u8..4,
        occ in 0u32..201,
    ) {
        let cfg = AdmissionConfig {
            reject_enter_pct: reject,
            degrade_enter_pct: degrade,
            park_enter_pct: park,
            exit_margin_pct: margin,
            ..AdmissionConfig::default()
        };
        let real = cfg.next_level(OverloadLevel::from_rank(rank), occ).rank();
        let abs = mirror(&cfg).next_level(rank, occ);
        prop_assert_eq!(real, abs);
    }
}
