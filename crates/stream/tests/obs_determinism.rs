//! Observability determinism: two same-seed campaigns must produce
//! byte-identical metrics snapshots and event traces.
//!
//! The tracer stamps events with the fabric's simulated cycle count and
//! the registry holds only integers, so there is no wall-clock or hash
//! ordering anywhere in the export path — this test is the proof.

use stream::{run_storm, StormConfig};

#[test]
fn same_seed_runs_export_identical_metrics_and_traces() {
    let cfg = StormConfig {
        streams: 40,
        ticks: 60,
        crc_ms: vec![8, 32],
        scrambler_m: 16,
        fault_prob: 0.1,
        overload_window: (10, 20),
        ..StormConfig::smoke(2008)
    };
    let a = run_storm(&cfg).unwrap();
    let b = run_storm(&cfg).unwrap();

    assert!(
        !a.metrics.is_empty(),
        "campaign must export a non-empty metrics snapshot"
    );
    assert!(!a.trace_log.is_empty(), "campaign must record trace events");
    assert_eq!(
        a.metrics.to_json_lines(),
        b.metrics.to_json_lines(),
        "same seed must yield a byte-identical metrics snapshot"
    );
    assert_eq!(
        a.trace_log, b.trace_log,
        "same seed must yield a byte-identical event trace"
    );
    assert_eq!(a.render(), b.render(), "reports stay deterministic too");
}

#[test]
fn different_seeds_diverge() {
    let small = |seed| StormConfig {
        streams: 20,
        ticks: 40,
        crc_ms: vec![8],
        scrambler_m: 16,
        fault_prob: 0.15,
        overload_window: (5, 12),
        ..StormConfig::smoke(seed)
    };
    let a = run_storm(&small(1)).unwrap();
    let b = run_storm(&small(2)).unwrap();
    // Traces are seed-reproducible, not seed-independent: different
    // seeds must actually exercise different campaigns.
    assert_ne!(a.trace_log, b.trace_log, "seeds must matter");
}
