//! Review repro: interleaved batch + Park advice hits duplicate ids in
//! `involved` (Vec::dedup without sort), so park_internal runs twice for
//! the same stream and errors.

use dream::ControlModel;
use dream_lfsr::FlowOptions;
use lfsr::crc::CrcSpec;
use picoga::{ConfigFault, PicogaParams};
use resilience::{classify, FaultEffect, FaultInjector, RecoveryPolicy, ResilientSystem};
use stream::{AdmissionConfig, Priority, StreamService};

fn semantic_seu(svc: &StreamService, name: &str, seed: u64) -> ConfigFault {
    let slot = svc.system().system().slot_of(name, 0).expect("resident");
    let pristine = svc
        .system()
        .system()
        .fabric()
        .context(slot)
        .expect("context")
        .clone();
    let mut inj = FaultInjector::new(seed);
    loop {
        let f = inj.random_wire_flip(slot, &pristine).expect("fault");
        if classify(&f, &pristine) == FaultEffect::Semantic {
            return f;
        }
    }
}

#[test]
fn park_advice_with_interleaved_batch_parks_both_streams() {
    let rs = ResilientSystem::new(
        PicogaParams::dream(),
        ControlModel::default(),
        RecoveryPolicy {
            max_reload_retries: 0,
            allow_resynthesis: false,
            allow_software_fallback: false,
            ..RecoveryPolicy::stream_serving()
        },
    );
    let mut svc = StreamService::new(rs, AdmissionConfig::default());
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    svc.host_crc("eth", spec, FlowOptions::dream_with_m(32))
        .unwrap();

    let data: Vec<u8> = (0..128u32).map(|i| (i * 11 + 7) as u8).collect();
    let a = svc.open_crc("eth", Priority::High, 8).unwrap();
    let b = svc.open_crc("eth", Priority::High, 8).unwrap();
    // Warm the lane so the update context is resident for fault aim.
    svc.feed(a, &data[..32]).unwrap();
    svc.tick().unwrap();

    let fault = semantic_seu(&svc, "eth", 31);
    svc.system_mut()
        .system_mut()
        .fabric_mut()
        .inject(&fault)
        .unwrap();

    // Two chunks queued on each stream -> the pump batch interleaves
    // [a, b, a, b] for the single "eth" personality group.
    svc.feed(a, &data[32..64]).unwrap();
    svc.feed(a, &data[64..96]).unwrap();
    svc.feed(b, &data[..32]).unwrap();
    svc.feed(b, &data[32..64]).unwrap();

    // The guard must detect, the ladder must advise Park, and both
    // streams must be parked cleanly.
    svc.tick().expect("tick must not error while parking");
    assert_eq!(svc.parked_ids(), vec![a, b]);
}
