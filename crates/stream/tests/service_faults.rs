//! Targeted fault-path tests: each rung of the migration story in
//! isolation, with the delivered digest checked against the software
//! oracle every time.

use dream::{ControlModel, Health};
use dream_lfsr::FlowOptions;
use gf2::BitVec;
use lfsr::crc::{crc_bitwise, CrcSpec};
use lfsr::scramble::{AdditiveScrambler, ScramblerSpec};
use picoga::{ConfigFault, PicogaParams};
use resilience::{classify, FaultEffect, FaultInjector, RecoveryPolicy, ResilientSystem};
use stream::{AdmissionConfig, Priority, ServiceError, StreamOutput, StreamService};

fn service(policy: RecoveryPolicy) -> StreamService {
    let rs = ResilientSystem::new(PicogaParams::dream(), ControlModel::default(), policy);
    let mut svc = StreamService::new(rs, AdmissionConfig::default());
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    svc.host_crc("eth", spec, FlowOptions::dream_with_m(32))
        .unwrap();
    svc
}

fn message(n: u32) -> Vec<u8> {
    (0..n).map(|i| (i * 11 + 7) as u8).collect()
}

fn eth_crc(data: &[u8]) -> u64 {
    crc_bitwise(CrcSpec::by_name("CRC-32/ETHERNET").unwrap(), data)
}

/// A semantic wire-flip in the resident update context of `name`.
fn semantic_seu(svc: &StreamService, name: &str, seed: u64) -> ConfigFault {
    let slot = svc
        .system()
        .system()
        .slot_of(name, 0)
        .expect("update resident");
    let pristine = svc
        .system()
        .system()
        .fabric()
        .context(slot)
        .expect("context")
        .clone();
    let mut inj = FaultInjector::new(seed);
    loop {
        let f = inj.random_wire_flip(slot, &pristine).expect("fault");
        if classify(&f, &pristine) == FaultEffect::Semantic {
            return f;
        }
    }
}

/// A semantic stuck-at cell under the resident update context.
fn semantic_stuck(svc: &StreamService, name: &str, seed: u64) -> ConfigFault {
    let slot = svc
        .system()
        .system()
        .slot_of(name, 0)
        .expect("update resident");
    let pristine = svc
        .system()
        .system()
        .fabric()
        .context(slot)
        .expect("context")
        .clone();
    let mut inj = FaultInjector::new(seed);
    loop {
        let f = inj.random_stuck_cell(&pristine).expect("fault");
        if classify(&f, &pristine) == FaultEffect::Semantic {
            return f;
        }
    }
}

#[test]
fn seu_mid_stream_rolls_back_and_delivers_the_exact_digest() {
    let mut svc = service(RecoveryPolicy::stream_serving());
    let data = message(96);
    let id = svc.open_crc("eth", Priority::High, 8).unwrap();
    svc.feed(id, &data[..32]).unwrap();
    svc.tick().unwrap(); // first chunk pumps clean; update now resident

    let fault = semantic_seu(&svc, "eth", 17);
    svc.system_mut()
        .system_mut()
        .fabric_mut()
        .inject(&fault)
        .unwrap();

    svc.feed(id, &data[32..]).unwrap();
    svc.tick().unwrap(); // guard must detect, roll back, heal, re-run

    let c = svc.counters();
    assert!(c.fault_rollbacks >= 1, "the guard saw the SEU: {c:?}");
    assert!(c.batch_reruns >= 1, "the batch re-ran after repair: {c:?}");
    assert_eq!(svc.system().system().health("eth"), Health::Healthy);
    match svc.finish(id).unwrap() {
        StreamOutput::Crc(crc) => assert_eq!(crc, eth_crc(&data)),
        other => panic!("CRC stream delivered {other:?}"),
    }
}

#[test]
fn stuck_cell_marshals_the_stream_to_software_mid_flight() {
    // Re-synthesis disallowed: a stuck cell forces software fallback,
    // and the live stream must follow it without losing a bit.
    let mut svc = service(RecoveryPolicy {
        allow_resynthesis: false,
        ..RecoveryPolicy::stream_serving()
    });
    let data = message(120);
    let id = svc.open_crc("eth", Priority::High, 8).unwrap();
    svc.feed(id, &data[..40]).unwrap();
    svc.tick().unwrap();

    let fault = semantic_stuck(&svc, "eth", 23);
    svc.system_mut()
        .system_mut()
        .fabric_mut()
        .inject(&fault)
        .unwrap();

    svc.feed(id, &data[40..]).unwrap();
    svc.tick().unwrap();

    let c = svc.counters();
    assert!(c.fault_rollbacks >= 1, "stuck cell detected: {c:?}");
    assert!(
        c.migrated_to_software >= 1,
        "stream marshalled out of the transformed domain: {c:?}"
    );
    assert_eq!(svc.system().system().health("eth"), Health::Fallback);
    match svc.finish(id).unwrap() {
        StreamOutput::Crc(crc) => assert_eq!(crc, eth_crc(&data)),
        other => panic!("CRC stream delivered {other:?}"),
    }

    // A stream opened after the retirement lazily degrades on its
    // first pump and is still exact.
    let late = svc.open_crc("eth", Priority::Low, 8).unwrap();
    svc.feed(late, &data).unwrap();
    svc.tick().unwrap();
    match svc.finish(late).unwrap() {
        StreamOutput::Crc(crc) => assert_eq!(crc, eth_crc(&data)),
        other => panic!("CRC stream delivered {other:?}"),
    }
}

#[test]
fn exhausted_ladder_parks_the_stream_and_loses_no_bytes() {
    // Nothing is allowed to repair or retire the lane; the
    // checkpoint-migrate rung must park the stream with its unprocessed
    // bytes intact.
    let mut svc = service(RecoveryPolicy {
        max_reload_retries: 0,
        allow_resynthesis: false,
        allow_software_fallback: false,
        ..RecoveryPolicy::stream_serving()
    });
    let data = message(96);
    let id = svc.open_crc("eth", Priority::High, 8).unwrap();
    svc.feed(id, &data[..32]).unwrap();
    svc.tick().unwrap();

    let fault = semantic_seu(&svc, "eth", 31);
    svc.system_mut()
        .system_mut()
        .fabric_mut()
        .inject(&fault)
        .unwrap();

    svc.feed(id, &data[32..]).unwrap();
    svc.tick().unwrap();

    let c = svc.counters();
    assert!(
        c.parked_fault >= 1,
        "recovery advice parked the stream: {c:?}"
    );
    assert_eq!(svc.parked_ids(), vec![id]);

    // Operator intervention: resume, migrate to software by hand, and
    // the digest is still exact — the parked snapshot lost nothing.
    svc.resume(id).unwrap();
    svc.degrade(id).unwrap();
    svc.tick().unwrap();
    match svc.finish(id).unwrap() {
        StreamOutput::Crc(crc) => assert_eq!(crc, eth_crc(&data)),
        other => panic!("CRC stream delivered {other:?}"),
    }
}

#[test]
fn scrambler_stream_survives_an_seu_with_exact_output() {
    let rs = ResilientSystem::new(
        PicogaParams::dream(),
        ControlModel::default(),
        RecoveryPolicy::stream_serving(),
    );
    let mut svc = StreamService::new(rs, AdmissionConfig::default());
    let spec = ScramblerSpec::ieee80211();
    svc.host_scrambler("wifi", spec, &FlowOptions::dream_with_m(16))
        .unwrap();

    let data = message(60);
    let seed = 0x55;
    let id = svc.open_scrambler("wifi", seed, Priority::High, 8).unwrap();
    svc.feed(id, &data[..20]).unwrap();
    svc.tick().unwrap();
    let mut got = svc.collect(id).unwrap();

    let fault = {
        let slot = svc.system().system().slot_of("wifi", 2).expect("resident");
        let pristine = svc
            .system()
            .system()
            .fabric()
            .context(slot)
            .unwrap()
            .clone();
        let mut inj = FaultInjector::new(47);
        loop {
            let f = inj.random_wire_flip(slot, &pristine).expect("fault");
            if classify(&f, &pristine) == FaultEffect::Semantic {
                break f;
            }
        }
    };
    svc.system_mut()
        .system_mut()
        .fabric_mut()
        .inject(&fault)
        .unwrap();

    svc.feed(id, &data[20..]).unwrap();
    svc.tick().unwrap();
    got = got.concat(&svc.collect(id).unwrap());
    assert!(svc.counters().fault_rollbacks >= 1, "SEU detected");

    match svc.finish(id).unwrap() {
        StreamOutput::Scrambled(tail) => {
            let got = got.concat(&tail);
            let mut oracle = AdditiveScrambler::with_seed(spec, seed).unwrap();
            let frame = BitVec::from_le_bytes(&data, data.len() * 8);
            assert_eq!(got, oracle.scramble(&frame), "scrambled output exact");
        }
        other => panic!("scrambler delivered {other:?}"),
    }
}

#[test]
fn typed_refusals_surface_and_are_counted() {
    let rs = ResilientSystem::new(
        PicogaParams::dream(),
        ControlModel::default(),
        RecoveryPolicy::stream_serving(),
    );
    let mut svc = StreamService::new(
        rs,
        AdmissionConfig {
            max_streams: 2,
            per_stream_queue_chunks: 1,
            global_queue_bytes: 64,
            bucket_capacity: 8,
            bucket_refill: 1,
            ..AdmissionConfig::default()
        },
    );
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    svc.host_crc("eth", spec, FlowOptions::dream_with_m(32))
        .unwrap();

    let a = svc.open_crc("eth", Priority::High, 4).unwrap();
    let b = svc.open_crc("eth", Priority::Low, 4).unwrap();
    assert!(matches!(
        svc.open_crc("eth", Priority::Low, 4),
        Err(ServiceError::RejectedByCapacity)
    ));

    svc.feed(a, &[1, 2, 3]).unwrap();
    assert!(matches!(
        svc.feed(a, &[4, 5, 6]),
        Err(ServiceError::StreamQueueFull { .. })
    ));
    assert!(matches!(
        svc.feed(b, &[0; 100]),
        Err(ServiceError::GlobalQueueFull { .. })
    ));
    assert!(matches!(
        svc.open_crc("ghost", Priority::High, 4),
        Err(ServiceError::UnknownPersonality(_))
    ));
    assert!(matches!(
        svc.feed(999, &[1]),
        Err(ServiceError::UnknownStream(999))
    ));

    let c = svc.counters();
    assert_eq!(c.rejected_capacity, 1);
    assert_eq!(c.rejected_queue_full, 1);
    assert_eq!(c.rejected_global_full, 1);
}
