//! The diagnostics layer: coded findings, severities, configurable
//! lint levels, and the rendered report.
//!
//! Modeled on clippy's lint machinery, scaled to the fabric flow: every
//! finding carries a stable `FL***` code so reports are grep-able and
//! levels can be reconfigured per code without touching the checkers.

use std::fmt;

/// Stable diagnostic codes of the fabric-lint subsystem.
///
/// `FL000` is reserved for the equivalence checker (a synthesis result
/// that does not compute its source matrix); `FL001`–`FL008` are the
/// structural lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// FL000 — the network's function differs from its source matrix.
    NonEquivalent,
    /// FL001 — a gate feeds no primary output (dead logic).
    DeadGate,
    /// FL002 — two gates compute the same XOR (missed sharing).
    DuplicateGate,
    /// FL003 — a single-input gate (buffer) burns a cell for a wire.
    BufferChain,
    /// FL004 — a gate's fan-in exceeds the logic-cell limit.
    FaninExceeded,
    /// FL005 — a row / cell / I-O budget is exceeded (error) or nearly
    /// saturated (advisory).
    BudgetExceeded,
    /// FL006 — the feedback structure is not in companion form, so the
    /// initiation interval equals the pipeline latency.
    NonCompanionFeedback,
    /// FL007 — a pipeline/wavefront hazard: a gate reads a signal placed
    /// in its own or a later row.
    WavefrontHazard,
    /// FL008 — a working set larger than the configuration cache
    /// (context thrash on a shared fabric).
    CacheOverflow,
    /// FL009 — a signal drives more cell taps than the routing fabric's
    /// fan-out bound.
    FanoutExceeded,
    /// FL010 — the network's critical-path logic depth exceeds the row
    /// budget: no wavefront placement at one level per row can exist.
    DepthOverRows,
    /// FL011 — a dead gate holds a placement row (occupies a physical
    /// fabric cell for nothing).
    DeadCell,
    /// FL012 — a gate taps the same signal more than once; the pair
    /// cancels in GF(2), wasting two fan-in slots.
    DuplicateTap,
}

impl Code {
    /// Every code, in FL-number order.
    pub const ALL: [Code; 13] = [
        Code::NonEquivalent,
        Code::DeadGate,
        Code::DuplicateGate,
        Code::BufferChain,
        Code::FaninExceeded,
        Code::BudgetExceeded,
        Code::NonCompanionFeedback,
        Code::WavefrontHazard,
        Code::CacheOverflow,
        Code::FanoutExceeded,
        Code::DepthOverRows,
        Code::DeadCell,
        Code::DuplicateTap,
    ];

    /// The stable string form (`"FL004"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NonEquivalent => "FL000",
            Code::DeadGate => "FL001",
            Code::DuplicateGate => "FL002",
            Code::BufferChain => "FL003",
            Code::FaninExceeded => "FL004",
            Code::BudgetExceeded => "FL005",
            Code::NonCompanionFeedback => "FL006",
            Code::WavefrontHazard => "FL007",
            Code::CacheOverflow => "FL008",
            Code::FanoutExceeded => "FL009",
            Code::DepthOverRows => "FL010",
            Code::DeadCell => "FL011",
            Code::DuplicateTap => "FL012",
        }
    }

    /// One-line description used in report headers and docs.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Code::NonEquivalent => "network function differs from its source matrix",
            Code::DeadGate => "gate feeds no primary output",
            Code::DuplicateGate => "duplicate gate (missed common-pattern sharing)",
            Code::BufferChain => "single-input buffer gate",
            Code::FaninExceeded => "gate fan-in exceeds the cell limit",
            Code::BudgetExceeded => "row/cell/I-O budget exceeded or nearly saturated",
            Code::NonCompanionFeedback => "feedback not in companion form (II = latency)",
            Code::WavefrontHazard => "gate reads a signal from its own or a later row",
            Code::CacheOverflow => "working set exceeds the configuration cache",
            Code::FanoutExceeded => "signal fan-out exceeds the routing bound",
            Code::DepthOverRows => "critical-path depth exceeds the row budget",
            Code::DeadCell => "dead gate occupies a placed fabric cell",
            Code::DuplicateTap => "gate taps the same signal twice (GF(2) cancellation)",
        }
    }

    fn index(self) -> usize {
        Code::ALL.iter().position(|&c| c == self).expect("in ALL")
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a finding is. `Error` findings fail strict builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: worth a look, does not gate the flow.
    Warning,
    /// Violation: the artifact is wrong or unmappable.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The whole network.
    Network,
    /// A gate, by index in the gate list.
    Gate(usize),
    /// A primary output, by index.
    Output(usize),
    /// A physical fabric row.
    Row(usize),
    /// A named PGA operation.
    Op(String),
    /// The shared system (configuration cache, contexts).
    System,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Network => write!(f, "network"),
            Location::Gate(g) => write!(f, "gate {g}"),
            Location::Output(o) => write!(f, "output {o}"),
            Location::Row(r) => write!(f, "row {r}"),
            Location::Op(name) => write!(f, "op '{name}'"),
            Location::System => write!(f, "system"),
        }
    }
}

/// One coded finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity after lint-level configuration.
    pub severity: Severity,
    /// Human-readable description with the concrete numbers.
    pub message: String,
    /// What the finding points at.
    pub location: Location,
}

impl Diagnostic {
    /// Builds an `Error`-severity finding.
    pub fn error(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            location,
        }
    }

    /// Builds a `Warning`-severity finding.
    pub fn warning(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            location,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// Per-code reporting level, clippy style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// Drop findings with this code.
    Allow,
    /// Report at `Warning` severity regardless of the finding's own.
    Warn,
    /// Report at `Error` severity regardless of the finding's own.
    Deny,
    /// Keep the checker's intrinsic severity (violations are errors,
    /// advisories are warnings). The default for every code.
    #[default]
    Keep,
}

/// Maps each [`Code`] to a [`LintLevel`]. `Copy`, so it can ride inside
/// flow options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    levels: [LintLevel; Code::ALL.len()],
}

impl LintConfig {
    /// Every code at [`LintLevel::Keep`] — intrinsic severities.
    #[must_use]
    pub fn keep_all() -> Self {
        LintConfig {
            levels: [LintLevel::Keep; Code::ALL.len()],
        }
    }

    /// Every code at [`LintLevel::Allow`] — lints off (the equivalence
    /// checker cannot be configured away by the flow's strict mode).
    #[must_use]
    pub fn allow_all() -> Self {
        LintConfig {
            levels: [LintLevel::Allow; Code::ALL.len()],
        }
    }

    /// Returns a copy with `code` set to `level`.
    #[must_use]
    pub fn with(mut self, code: Code, level: LintLevel) -> Self {
        self.levels[code.index()] = level;
        self
    }

    /// The configured level of `code`.
    #[must_use]
    pub fn level(&self, code: Code) -> LintLevel {
        self.levels[code.index()]
    }

    /// Applies the configuration to raw findings: drops `Allow`ed codes
    /// and overrides severities for `Warn`/`Deny` codes.
    #[must_use]
    pub fn apply(&self, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
        raw.into_iter()
            .filter_map(|mut d| match self.level(d.code) {
                LintLevel::Allow => None,
                LintLevel::Warn => {
                    d.severity = Severity::Warning;
                    Some(d)
                }
                LintLevel::Deny => {
                    d.severity = Severity::Error;
                    Some(d)
                }
                LintLevel::Keep => Some(d),
            })
            .collect()
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig::keep_all()
    }
}

/// A batch of findings with rendering and severity accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// The findings, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends all findings of another report.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error`-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// `true` when any finding is an error.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Renders the report as aligned text, one finding per line, with a
    /// trailing summary.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                out,
                "{:<7} {:<6} {:<12} {}",
                d.severity.to_string(),
                d.code,
                d.location.to_string(),
                d.message
            );
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// A failed verification, as an error type: the report behind a strict
/// mode rejection, so callers can walk `source()` chains down to the
/// individual findings instead of parsing rendered text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The report that contained at least one `Error`-severity finding.
    pub report: Report,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.report.render().trim_end())
    }
}

impl std::error::Error for VerifyError {}

impl From<Report> for VerifyError {
    fn from(report: Report) -> Self {
        VerifyError { report }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            strs,
            [
                "FL000", "FL001", "FL002", "FL003", "FL004", "FL005", "FL006", "FL007", "FL008",
                "FL009", "FL010", "FL011", "FL012"
            ]
        );
        for c in Code::ALL {
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn config_levels_rewrite_severities() {
        let raw = vec![
            Diagnostic::error(Code::FaninExceeded, Location::Gate(3), "fan-in 12 > 10"),
            Diagnostic::warning(Code::DeadGate, Location::Gate(7), "unused"),
        ];
        let cfg = LintConfig::keep_all()
            .with(Code::FaninExceeded, LintLevel::Warn)
            .with(Code::DeadGate, LintLevel::Deny);
        let out = cfg.apply(raw.clone());
        assert_eq!(out[0].severity, Severity::Warning);
        assert_eq!(out[1].severity, Severity::Error);

        let allowed = LintConfig::allow_all().apply(raw);
        assert!(allowed.is_empty());
    }

    #[test]
    fn report_counts_and_renders() {
        let mut r = Report::new();
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::error(
            Code::BudgetExceeded,
            Location::Op("update".into()),
            "needs 30 rows, fabric has 24",
        ));
        r.diagnostics.push(Diagnostic::warning(
            Code::BufferChain,
            Location::Gate(0),
            "1-input gate",
        ));
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_errors());
        let text = r.render();
        assert!(text.contains("FL005"));
        assert!(text.contains("op 'update'"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }
}
