//! Symbolic GF(2) equivalence checking: prove that a synthesized
//! [`XorNetwork`] computes exactly `y = M·x` for its source matrix.
//!
//! Over GF(2) an XOR network is a linear map by construction, so probing
//! it with every basis vector `e_j` is a **complete proof**, not a
//! sample: if `net(e_j) = M·e_j` for all `j` then `net(x) = M·x` for all
//! `x` by linearity. The probe drives [`XorNetwork::evaluate`] — the
//! same code path the fabric simulator executes — so the proof covers
//! the runtime semantics, independent of the IR's own symbolic
//! `to_matrix` pass. On a mismatch, a second, forward support-tracking
//! pass localises the offending outputs and input columns.

use crate::diag::{Code, Diagnostic, Location};
use gf2::{BitMat, BitVec};
use std::fmt;
use xornet::XorNetwork;

/// One output row whose function differs from the source matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMismatch {
    /// The output (matrix row) index.
    pub output: usize,
    /// Input columns where the functions differ.
    pub bad_inputs: Vec<usize>,
}

impl fmt::Display for RowMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output {} differs on input column(s) {:?}",
            self.output, self.bad_inputs
        )
    }
}

/// Why [`check_network`] rejected a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivError {
    /// The network and matrix do not even have matching dimensions.
    ShapeMismatch {
        /// Matrix rows (expected outputs).
        expected_outputs: usize,
        /// Matrix columns (expected inputs).
        expected_inputs: usize,
        /// Network outputs.
        got_outputs: usize,
        /// Network inputs.
        got_inputs: usize,
    },
    /// The shapes agree but the functions differ.
    NotEquivalent {
        /// Every differing output row with its differing columns.
        mismatches: Vec<RowMismatch>,
        /// Basis probes run (`= n_inputs`), for the proof record.
        probes: usize,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::ShapeMismatch {
                expected_outputs,
                expected_inputs,
                got_outputs,
                got_inputs,
            } => write!(
                f,
                "shape mismatch: matrix is {expected_outputs}x{expected_inputs}, \
                 network has {got_outputs} outputs over {got_inputs} inputs"
            ),
            EquivError::NotEquivalent { mismatches, probes } => {
                write!(
                    f,
                    "not equivalent after {probes} basis probes: {} bad row(s): ",
                    mismatches.len()
                )?;
                for (i, m) in mismatches.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EquivError {}

impl EquivError {
    /// Converts the rejection into `FL000` diagnostics (one per bad
    /// output, or one for a shape mismatch).
    #[must_use]
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        match self {
            EquivError::ShapeMismatch { .. } => vec![Diagnostic::error(
                Code::NonEquivalent,
                Location::Network,
                self.to_string(),
            )],
            EquivError::NotEquivalent { mismatches, .. } => mismatches
                .iter()
                .map(|m| {
                    Diagnostic::error(
                        Code::NonEquivalent,
                        Location::Output(m.output),
                        format!(
                            "differs from source row on input column(s) {:?}",
                            m.bad_inputs
                        ),
                    )
                })
                .collect(),
        }
    }
}

/// Proves `net(x) = matrix·x` for all `x`, or reports exactly where the
/// functions differ.
///
/// # Errors
///
/// [`EquivError::ShapeMismatch`] when dimensions disagree,
/// [`EquivError::NotEquivalent`] with per-row localisation otherwise.
pub fn check_network(net: &XorNetwork, matrix: &BitMat) -> Result<(), EquivError> {
    if net.n_inputs() != matrix.cols() || net.outputs().len() != matrix.rows() {
        return Err(EquivError::ShapeMismatch {
            expected_outputs: matrix.rows(),
            expected_inputs: matrix.cols(),
            got_outputs: net.outputs().len(),
            got_inputs: net.n_inputs(),
        });
    }
    let n = net.n_inputs();
    let rows = matrix.rows();

    // Basis probe through the runtime evaluator: column j of the network's
    // linear map is net(e_j).
    let mut bad: Vec<Vec<usize>> = vec![Vec::new(); rows];
    let mut any = false;
    for j in 0..n {
        let probe = net.evaluate(&BitVec::unit(j, n));
        for (i, bad_row) in bad.iter_mut().enumerate() {
            if probe.get(i) != matrix.get(i, j) {
                bad_row.push(j);
                any = true;
            }
        }
    }
    // A linear map sends 0 to 0; assert the evaluator agrees (guards
    // against a nonlinear regression in the IR itself).
    if n > 0 {
        let zero = net.evaluate(&BitVec::zeros(n));
        debug_assert!(zero.is_zero(), "XOR network must be linear");
    }
    if !any {
        return Ok(());
    }
    Err(EquivError::NotEquivalent {
        mismatches: bad
            .into_iter()
            .enumerate()
            .filter(|(_, cols)| !cols.is_empty())
            .map(|(output, bad_inputs)| RowMismatch { output, bad_inputs })
            .collect(),
        probes: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xornet::{synthesize, SynthOptions};

    fn dense_matrix(rows: usize, cols: usize, seed: u64) -> BitMat {
        let mut m = BitMat::zeros(rows, cols);
        let mut x = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x & 1 == 1 {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    #[test]
    fn accepts_synthesized_networks() {
        for seed in 1..5u64 {
            let m = dense_matrix(16, 24, seed);
            let net = synthesize(&m, SynthOptions::default());
            assert_eq!(check_network(&net, &m), Ok(()));
        }
    }

    #[test]
    fn rejects_shape_mismatch() {
        let m = dense_matrix(4, 8, 3);
        let net = synthesize(&m, SynthOptions::default());
        let wider = dense_matrix(4, 9, 3);
        assert!(matches!(
            check_network(&net, &wider),
            Err(EquivError::ShapeMismatch { .. })
        ));
        let taller = dense_matrix(5, 8, 3);
        assert!(matches!(
            check_network(&net, &taller),
            Err(EquivError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn localises_a_flipped_matrix_bit() {
        let m = dense_matrix(8, 12, 7);
        let net = synthesize(&m, SynthOptions::default());
        let mut wrong = m.clone();
        wrong.set(5, 9, !wrong.get(5, 9));
        let err = check_network(&net, &wrong).unwrap_err();
        match err {
            EquivError::NotEquivalent { mismatches, probes } => {
                assert_eq!(probes, 12);
                assert_eq!(mismatches.len(), 1);
                assert_eq!(mismatches[0].output, 5);
                assert_eq!(mismatches[0].bad_inputs, vec![9]);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn rejects_a_corrupted_network() {
        // Swap two outputs of a synthesized network; unless the rows were
        // identical the checker must notice.
        let mut m = dense_matrix(6, 10, 11);
        // Force rows 0 and 1 to differ.
        m.set(0, 0, true);
        m.set(1, 0, false);
        let net = synthesize(&m, SynthOptions::default());
        let mut corrupted = XorNetwork::new(net.n_inputs(), net.max_fanin());
        for g in net.gates() {
            corrupted.add_gate(g.inputs.clone());
        }
        let outs = net.outputs();
        corrupted.add_output(outs[1]);
        corrupted.add_output(outs[0]);
        for o in &outs[2..] {
            corrupted.add_output(*o);
        }
        let err = check_network(&corrupted, &m).unwrap_err();
        match err {
            EquivError::NotEquivalent { mismatches, .. } => {
                let outputs: Vec<usize> = mismatches.iter().map(|r| r.output).collect();
                assert!(outputs.contains(&0) && outputs.contains(&1));
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn diagnostics_carry_fl000() {
        let m = dense_matrix(4, 6, 5);
        let net = synthesize(&m, SynthOptions::default());
        let mut wrong = m.clone();
        wrong.set(2, 3, !wrong.get(2, 3));
        let diags = check_network(&net, &wrong).unwrap_err().diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::NonEquivalent);
        assert_eq!(diags[0].location, Location::Output(2));
    }

    #[test]
    fn empty_and_wire_networks_check() {
        let m = BitMat::identity(5);
        let net = synthesize(&m, SynthOptions::default());
        assert_eq!(check_network(&net, &m), Ok(()));
        let z = BitMat::zeros(3, 4);
        let net = synthesize(&z, SynthOptions::default());
        assert_eq!(check_network(&net, &z), Ok(()));
    }
}
