//! # fabric-lint — static verification of synthesized fabric mappings
//!
//! The synthesis flow turns GF(2) matrices (`B_Mt`, `T`, stacked
//! scrambler matrices) into XOR networks and places them on the PiCoGA
//! model. This crate proves and polices those artifacts *before* they
//! run:
//!
//! * [`check_network`] — a symbolic GF(2) **equivalence checker**: an
//!   XOR network is linear, so probing its runtime evaluator with every
//!   input basis vector is a complete proof that it computes `y = M·x`
//!   for its source matrix. Rejections are localised to the offending
//!   output rows and input columns (`FL000`).
//! * [`lint_network`] / [`lint_operation`] / [`lint_context_demand`] —
//!   a **structural linter** with stable codes `FL001`–`FL012`: dead
//!   gates, missed sharing, buffer chains, cell fan-in violations,
//!   row/cell/I-O budget violations and saturation, non-companion
//!   feedback (II = latency), wavefront hazards in the row placement,
//!   configuration-cache overflow on a shared fabric, routing fan-out
//!   violations, critical-path depth over the row budget, placed dead
//!   cells, and duplicate taps that cancel in GF(2).
//! * [`Diagnostic`] / [`Report`] / [`LintConfig`] — the diagnostics
//!   layer: coded findings with intrinsic severities, per-code
//!   allow/warn/deny/keep levels, and a rendered text report.
//!
//! [`verify_mapping`] bundles the checker and the linter into the one
//! call the mapping flow's strict mode uses per operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod equiv;
mod lint;

pub use diag::{Code, Diagnostic, LintConfig, LintLevel, Location, Report, Severity, VerifyError};
pub use equiv::{check_network, EquivError, RowMismatch};
pub use lint::{
    lint_context_demand, lint_network, lint_operation, lint_placed_network, ROW_SATURATION_WARN_PCT,
};

use gf2::BitMat;
use picoga::{PgaOperation, PicogaParams};

/// Verifies one placed operation end to end: proves the operation's
/// network equivalent to `expected` (its source matrix) and runs every
/// structural lint against `params`.
///
/// `config` re-levels or silences the structural lints; equivalence
/// failures (`FL000`) are always reported at `Error` severity — a
/// network that computes the wrong function cannot be configured into
/// acceptability.
#[must_use]
pub fn verify_mapping(
    op: &PgaOperation,
    expected: &BitMat,
    params: &PicogaParams,
    config: &LintConfig,
) -> Report {
    let mut report = Report::new();
    if let Err(e) = check_network(op.network(), expected) {
        report.diagnostics.extend(e.diagnostics());
    }
    let lints = lint_operation(op, params);
    report.diagnostics.extend(config.apply(lints.diagnostics));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::Gf2Poly;
    use xornet::{synthesize, SynthOptions};

    #[test]
    fn verify_mapping_accepts_a_correct_op_and_rejects_a_wrong_matrix() {
        let params = PicogaParams::dream();
        let t = BitMat::companion(&Gf2Poly::from_crc_notation(0x1021, 16)).pow(9);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("T", net, &params).unwrap();

        let clean = verify_mapping(&op, &t, &params, &LintConfig::keep_all());
        assert!(!clean.has_errors(), "{}", clean.render());

        let mut wrong = t.clone();
        wrong.set(3, 3, !wrong.get(3, 3));
        let report = verify_mapping(&op, &wrong, &params, &LintConfig::keep_all());
        assert!(report.has_errors());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::NonEquivalent));
    }

    #[test]
    fn equivalence_errors_survive_allow_all() {
        let params = PicogaParams::dream();
        let t = BitMat::identity(8);
        let net = synthesize(&t, SynthOptions::default());
        let op = PgaOperation::linear("id", net, &params).unwrap();
        let mut wrong = t;
        wrong.set(0, 1, true);
        let report = verify_mapping(&op, &wrong, &params, &LintConfig::allow_all());
        assert!(report.has_errors(), "FL000 is not configurable");
    }
}
