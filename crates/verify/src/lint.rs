//! Structural lints over XOR networks and placed PiCoGA operations.
//!
//! Each lint emits [`Diagnostic`]s with a stable `FL***` code and an
//! *intrinsic* severity: outright violations (a gate the cell cannot
//! implement, a placement that breaks the wavefront discipline, a budget
//! the array does not have) are errors; efficiency and robustness
//! advisories (dead logic, missed sharing, near-saturated rows, a
//! working set that will thrash the configuration cache) are warnings.
//! [`crate::LintConfig`] can re-level or silence any code.

use crate::diag::{Code, Diagnostic, Location, Report};
use picoga::{PgaOperation, PicogaParams, Placement};
use xornet::XorNetwork;

/// Row-utilization fraction (in percent) at which FL005 starts advising
/// that an operation leaves no headroom on the array. The paper's M=128
/// CRC-32 update occupies 24/24 rows — mappable, but at the limit.
pub const ROW_SATURATION_WARN_PCT: usize = 95;

/// Lints a bare XOR network against a cell fan-in limit.
///
/// Emits `FL001` (dead gate), `FL002` (duplicate gate), `FL003` (buffer
/// gate) and `FL012` (duplicate tap) advisories and `FL004` (fan-in
/// over `fanin_limit`) violations.
#[must_use]
pub fn lint_network(net: &XorNetwork, fanin_limit: usize) -> Report {
    let mut report = Report::new();
    let live = net.live_signals();

    // FL002 needs canonical fan-in sets; collect them in one pass.
    let mut seen: Vec<(Vec<usize>, usize)> = Vec::with_capacity(net.gate_count());
    for (gi, gate) in net.gates().iter().enumerate() {
        let sid = net.n_inputs() + gi;

        if !live[sid] {
            report.diagnostics.push(Diagnostic::warning(
                Code::DeadGate,
                Location::Gate(gi),
                "gate output reaches no primary output (dead logic)",
            ));
        }

        if gate.inputs.len() == 1 {
            report.diagnostics.push(Diagnostic::warning(
                Code::BufferChain,
                Location::Gate(gi),
                format!(
                    "single-input gate buffers signal {} — a wire would do",
                    gate.inputs[0]
                ),
            ));
        }

        if gate.inputs.len() > fanin_limit {
            report.diagnostics.push(Diagnostic::error(
                Code::FaninExceeded,
                Location::Gate(gi),
                format!(
                    "fan-in {} exceeds the {fanin_limit}-input cell limit",
                    gate.inputs.len()
                ),
            ));
        }

        let mut key = gate.inputs.clone();
        key.sort_unstable();
        let before_dedup = key.len();
        key.dedup();
        if key.len() < before_dedup {
            report.diagnostics.push(Diagnostic::warning(
                Code::DuplicateTap,
                Location::Gate(gi),
                format!(
                    "{} of {} taps are repeats; repeated pairs cancel in GF(2) \
                     and burn fan-in slots",
                    before_dedup - key.len(),
                    before_dedup
                ),
            ));
        }
        if let Some((_, first)) = seen.iter().find(|(k, _)| *k == key) {
            report.diagnostics.push(Diagnostic::warning(
                Code::DuplicateGate,
                Location::Gate(gi),
                format!("computes the same XOR as gate {first} (missed sharing)"),
            ));
        } else {
            seen.push((key, gi));
        }
    }
    report
}

/// Lints a network *with its row placement*: everything
/// [`lint_network`] finds, plus `FL007` wavefront hazards — a gate
/// whose fan-in is produced in its own row or a later one would read a
/// stale value once each row becomes a pipeline stage — and `FL011`
/// dead cells: dead gates that nonetheless hold a placement row and so
/// occupy a physical fabric cell.
#[must_use]
pub fn lint_placed_network(net: &XorNetwork, placement: &Placement, fanin_limit: usize) -> Report {
    let mut report = lint_network(net, fanin_limit);
    let live = net.live_signals();
    for (gi, gate) in net.gates().iter().enumerate() {
        let Some(row) = placement.row_of(gi) else {
            continue;
        };
        if !live[net.n_inputs() + gi] {
            report.diagnostics.push(Diagnostic::warning(
                Code::DeadCell,
                Location::Gate(gi),
                format!("dead gate occupies a cell in row {row}"),
            ));
        }
        for &s in &gate.inputs {
            if s < net.n_inputs() {
                continue; // primary inputs are valid in every row
            }
            let producer = s - net.n_inputs();
            match placement.row_of(producer) {
                Some(prow) if prow < row => {}
                Some(prow) => {
                    report.diagnostics.push(Diagnostic::error(
                        Code::WavefrontHazard,
                        Location::Row(row),
                        format!(
                            "gate {gi} in row {row} reads gate {producer} placed in \
                             row {prow}; one wavefront advances one row per cycle"
                        ),
                    ));
                }
                None => {
                    report.diagnostics.push(Diagnostic::error(
                        Code::WavefrontHazard,
                        Location::Row(row),
                        format!("gate {gi} reads gate {producer}, which is not placed"),
                    ));
                }
            }
        }
    }
    report
}

/// Lints a placed [`PgaOperation`] against the fabric it targets.
///
/// Adds to [`lint_placed_network`]:
///
/// * `FL005` — row / cell / I-O budget violations (errors) and
///   near-saturation advisories (≥ [`ROW_SATURATION_WARN_PCT`] % of the
///   rows, warnings);
/// * `FL006` — a dense look-ahead feedback structure, whose loop spans
///   the whole pipeline (II = latency instead of 1);
/// * `FL009` — a signal whose fan-out exceeds the routing bound
///   (`PicogaParams::max_signal_fanout`);
/// * `FL010` — a critical-path logic depth over the row budget, which
///   no one-level-per-row wavefront placement can absorb.
#[must_use]
pub fn lint_operation(op: &PgaOperation, params: &PicogaParams) -> Report {
    let mut report = lint_placed_network(op.network(), op.placement(), params.max_cell_fanin);
    let stats = op.stats();
    let loc = || Location::Op(op.name().to_string());

    let net = op.network();
    let mut fanout = vec![0usize; net.n_inputs() + net.gate_count()];
    for gate in net.gates() {
        let mut taps = gate.inputs.clone();
        taps.sort_unstable();
        taps.dedup();
        for s in taps {
            fanout[s] += 1;
        }
    }
    let bound = params.max_signal_fanout();
    for (s, &f) in fanout.iter().enumerate() {
        if f > bound {
            report.diagnostics.push(Diagnostic::error(
                Code::FanoutExceeded,
                loc(),
                format!("signal {s} drives {f} cell taps, the routing allows {bound}"),
            ));
        }
    }

    let mut level = vec![0usize; net.n_inputs() + net.gate_count()];
    for (gi, gate) in net.gates().iter().enumerate() {
        let deepest = gate.inputs.iter().map(|&s| level[s]).max().unwrap_or(0);
        level[net.n_inputs() + gi] = deepest + 1;
    }
    let depth = level.iter().copied().max().unwrap_or(0);
    if depth > params.rows {
        report.diagnostics.push(Diagnostic::error(
            Code::DepthOverRows,
            loc(),
            format!(
                "critical path spans {depth} logic levels, the array pipelines \
                 one level per row over {} rows",
                params.rows
            ),
        ));
    }

    if stats.rows > params.rows {
        report.diagnostics.push(Diagnostic::error(
            Code::BudgetExceeded,
            loc(),
            format!("needs {} rows, the array has {}", stats.rows, params.rows),
        ));
    } else if stats.rows * 100 >= params.rows * ROW_SATURATION_WARN_PCT {
        report.diagnostics.push(Diagnostic::warning(
            Code::BudgetExceeded,
            loc(),
            format!(
                "occupies {}/{} rows ({}% — no headroom for larger M)",
                stats.rows,
                params.rows,
                stats.rows * 100 / params.rows
            ),
        ));
    }
    if stats.cells > params.total_cells() {
        report.diagnostics.push(Diagnostic::error(
            Code::BudgetExceeded,
            loc(),
            format!(
                "needs {} cells, the array has {}",
                stats.cells,
                params.total_cells()
            ),
        ));
    }
    if stats.input_bits > params.input_bits {
        report.diagnostics.push(Diagnostic::error(
            Code::BudgetExceeded,
            loc(),
            format!(
                "consumes {} input bits per issue, the fabric provides {}",
                stats.input_bits, params.input_bits
            ),
        ));
    }
    if stats.output_bits > params.output_bits {
        report.diagnostics.push(Diagnostic::error(
            Code::BudgetExceeded,
            loc(),
            format!(
                "produces {} output bits per issue, the fabric provides {}",
                stats.output_bits, params.output_bits
            ),
        ));
    }

    if op.dense_update_k().is_some() {
        report.diagnostics.push(Diagnostic::warning(
            Code::NonCompanionFeedback,
            loc(),
            format!(
                "dense look-ahead fallback: the feedback loop spans all {} pipeline \
                 rows, so the initiation interval is {} instead of 1",
                stats.rows, stats.initiation_interval
            ),
        ));
    }
    report
}

/// Lints a shared fabric's configuration working set: `FL008` advises
/// when `demand` resident operations exceed the on-fabric context cache
/// (every switch past capacity pays the off-fabric reload).
#[must_use]
pub fn lint_context_demand(demand: usize, params: &PicogaParams) -> Report {
    let mut report = Report::new();
    if demand > params.contexts {
        report.diagnostics.push(Diagnostic::warning(
            Code::CacheOverflow,
            Location::System,
            format!(
                "working set of {demand} operations exceeds the {}-context \
                 configuration cache; round-robin use will reload on every switch",
                params.contexts
            ),
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{BitMat, BitVec};
    use xornet::{synthesize, SynthOptions};

    fn codes(report: &Report) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_synthesized_network_lints_clean() {
        let m = BitMat::companion(&gf2::Gf2Poly::from_crc_notation(0x1021, 16)).pow(7);
        let net = synthesize(&m, SynthOptions::default());
        let report = lint_network(&net, 10);
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn dead_duplicate_buffer_and_fanin_found() {
        let mut net = XorNetwork::new(4, 12);
        let g0 = net.add_gate(vec![0, 1]);
        let _dead = net.add_gate(vec![2, 3]);
        let dup = net.add_gate(vec![1, 0]); // same set as g0, other order
        let buf = net.add_gate(vec![g0]);
        let wide = net.add_gate(vec![0, 1, 2, 3, g0, dup, buf, 0, 1, 2, 3, g0]);
        net.add_output(Some(wide));

        let report = lint_network(&net, 10);
        let found = codes(&report);
        assert!(found.contains(&Code::DeadGate));
        assert!(found.contains(&Code::DuplicateGate));
        assert!(found.contains(&Code::BufferChain));
        assert!(found.contains(&Code::FaninExceeded));
        assert_eq!(report.error_count(), 1, "only FL004 is a violation");
    }

    #[test]
    fn wavefront_hazard_detected_in_bad_placement() {
        let mut net = XorNetwork::new(2, 4);
        let g0 = net.add_gate(vec![0, 1]);
        let g1 = net.add_gate(vec![g0, 1]);
        net.add_output(Some(g1));

        // Good: g0 in row 0, g1 in row 1.
        let good = Placement::from_rows(vec![vec![0], vec![1]]);
        assert!(lint_placed_network(&net, &good, 10).diagnostics.is_empty());

        // Bad: both in one row — g1 reads g0's stale value.
        let same_row = Placement::from_rows(vec![vec![0, 1]]);
        let report = lint_placed_network(&net, &same_row, 10);
        assert!(codes(&report).contains(&Code::WavefrontHazard));
        assert!(report.has_errors());

        // Worse: producer in a *later* row.
        let swapped = Placement::from_rows(vec![vec![1], vec![0]]);
        assert!(lint_placed_network(&net, &swapped, 10).has_errors());

        // Unplaced producer is also a hazard.
        let missing = Placement::from_rows(vec![vec![1]]);
        assert!(lint_placed_network(&net, &missing, 10).has_errors());
    }

    #[test]
    fn operation_budgets_and_saturation() {
        use picoga::PgaOperation;
        let params = PicogaParams::dream();

        // A modest op on the full DREAM array: clean.
        let m = BitMat::identity(16);
        let op = PgaOperation::linear("wires", synthesize(&m, SynthOptions::default()), &params)
            .unwrap();
        let report = lint_operation(&op, &params);
        assert!(!report.has_errors(), "{}", report.render());

        // The same op judged against a 1-row fabric: near/at saturation.
        let mut tiny = params;
        tiny.rows = 1;
        let report = lint_operation(&op, &tiny);
        // 0 rows used out of 1 — still clean; now force a deep network.
        assert!(!report.has_errors());
        let parity = BitMat::from_rows(vec![BitVec::ones(8)]);
        let deep = synthesize(
            &parity,
            SynthOptions {
                max_fanin: 2,
                share_patterns: false,
            },
        );
        let op = PgaOperation::linear("parity", deep, &params).unwrap();
        let mut judge = params;
        judge.rows = 3; // op needs 3 rows → 100% utilization advisory
        let report = lint_operation(&op, &judge);
        assert!(
            codes(&report).contains(&Code::BudgetExceeded),
            "{}",
            report.render()
        );
        assert!(!report.has_errors(), "saturation is advisory");
        judge.rows = 2; // now it plainly does not fit
        let report = lint_operation(&op, &judge);
        assert!(report.has_errors());
    }

    #[test]
    fn dense_fallback_flagged_fl006() {
        use picoga::PgaOperation;
        let params = PicogaParams::dream();
        // x' = A·x + I·u over [x | u], k = 4, M = 4.
        let a = BitMat::companion(&gf2::Gf2Poly::from_crc_notation(0x3, 4));
        let mat = a.hstack(&BitMat::identity(4));
        let net = synthesize(&mat, SynthOptions::default());
        let op = PgaOperation::crc_update_dense("dense", net, 4, &params).unwrap();
        let report = lint_operation(&op, &params);
        assert!(codes(&report).contains(&Code::NonCompanionFeedback));
        assert!(!report.has_errors(), "the fallback is legal, just slow");
    }

    #[test]
    fn duplicate_tap_flagged_fl012() {
        let mut net = XorNetwork::new(2, 4);
        let g = net.add_gate(vec![0, 0, 1]); // x0 ⊕ x0 ⊕ x1 = x1
        net.add_output(Some(g));
        let report = lint_network(&net, 10);
        assert!(codes(&report).contains(&Code::DuplicateTap));
        assert!(!report.has_errors(), "cancellation is advisory");

        // Negative: distinct taps stay clean of FL012.
        let mut clean = XorNetwork::new(2, 4);
        let g = clean.add_gate(vec![0, 1]);
        clean.add_output(Some(g));
        assert!(!codes(&lint_network(&clean, 10)).contains(&Code::DuplicateTap));
    }

    #[test]
    fn placed_dead_gate_flagged_fl011() {
        let mut net = XorNetwork::new(2, 4);
        let g0 = net.add_gate(vec![0, 1]);
        let _dead = net.add_gate(vec![1, 0]); // dead AND a duplicate
        net.add_output(Some(g0));

        // Dead gate holds a cell in row 0: FL011 (plus the FL001 advisory).
        let placed = Placement::from_rows(vec![vec![0, 1]]);
        let report = lint_placed_network(&net, &placed, 10);
        assert!(codes(&report).contains(&Code::DeadCell));

        // Negative: the dead gate left unplaced costs no cell.
        let pruned = Placement::from_rows(vec![vec![0]]);
        let report = lint_placed_network(&net, &pruned, 10);
        assert!(!codes(&report).contains(&Code::DeadCell));
    }

    #[test]
    fn fanout_over_routing_bound_flagged_fl009() {
        use picoga::PgaOperation;
        let params = PicogaParams::dream();
        // Six outputs all tapping x0 (and x1, to avoid buffer gates),
        // shared-pattern detection off so all six gates survive.
        let m = BitMat::from_rows(vec![BitVec::ones(2); 6]);
        let net = synthesize(
            &m,
            SynthOptions {
                share_patterns: false,
                ..SynthOptions::default()
            },
        );
        let op = PgaOperation::linear("fan", net, &params).unwrap();

        // Negative: the DREAM routing bound (64) absorbs fan-out 6.
        assert!(!codes(&lint_operation(&op, &params)).contains(&Code::FanoutExceeded));

        // Positive: judge against a narrow fabric — bound 4 × 1 = 4 < 6.
        let mut narrow = params;
        narrow.cells_per_row = 1;
        let report = lint_operation(&op, &narrow);
        assert!(
            codes(&report).contains(&Code::FanoutExceeded),
            "{}",
            report.render()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn depth_over_row_budget_flagged_fl010() {
        use picoga::PgaOperation;
        let params = PicogaParams::dream();
        // Parity of 8 bits at fan-in 2: a 3-level tree.
        let parity = BitMat::from_rows(vec![BitVec::ones(8)]);
        let deep = synthesize(
            &parity,
            SynthOptions {
                max_fanin: 2,
                share_patterns: false,
            },
        );
        let op = PgaOperation::linear("parity", deep, &params).unwrap();

        // Negative: 3 levels fit 24 rows.
        assert!(!codes(&lint_operation(&op, &params)).contains(&Code::DepthOverRows));

        // Positive: a 2-row fabric cannot pipeline 3 logic levels.
        let mut shallow = params;
        shallow.rows = 2;
        let report = lint_operation(&op, &shallow);
        assert!(
            codes(&report).contains(&Code::DepthOverRows),
            "{}",
            report.render()
        );
        assert!(report.has_errors());
    }

    #[test]
    fn context_demand_advisory() {
        let params = PicogaParams::dream(); // 4 contexts
        assert!(lint_context_demand(4, &params).diagnostics.is_empty());
        let report = lint_context_demand(6, &params);
        assert_eq!(codes(&report), vec![Code::CacheOverflow]);
        assert_eq!(report.warning_count(), 1);
    }
}
