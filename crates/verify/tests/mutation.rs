//! Mutation testing of the equivalence checker: inject single-point
//! faults into networks that are known-good and require [`check_network`]
//! to catch every semantics-changing mutant. A checker that accepts a
//! mutant it should reject is worse than no checker — it certifies broken
//! hardware mappings.

use gf2::BitMat;
use proptest::prelude::*;
use verify::check_network;
use xornet::{synthesize, SynthOptions, XorNetwork};

/// Deterministic xorshift so a `u64` seed expands into a whole matrix.
fn splat(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> BitMat {
    let mut next = splat(seed);
    let mut m = BitMat::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, next() & 1 == 1);
        }
    }
    m
}

/// Rebuilds `net` gate by gate, giving the caller a chance to rewrite
/// each gate's fan-in list. The rebuilt network keeps the original
/// output wiring.
fn rebuild(net: &XorNetwork, mut rewrite: impl FnMut(usize, &mut Vec<usize>)) -> XorNetwork {
    let mut out = XorNetwork::new(net.n_inputs(), net.max_fanin());
    for (gi, g) in net.gates().iter().enumerate() {
        let mut inputs = g.inputs.clone();
        rewrite(gi, &mut inputs);
        out.add_gate(inputs);
    }
    for o in net.outputs() {
        out.add_output(*o);
    }
    out
}

/// Flips one fan-in wire of one gate to a different (earlier) signal.
fn flip_gate_input(net: &XorNetwork, choice: u64) -> Option<XorNetwork> {
    if net.gate_count() == 0 {
        return None;
    }
    let gi = (choice as usize) % net.gate_count();
    let gate_signal = net.n_inputs() + gi;
    if gate_signal < 2 {
        return None; // no alternative wire exists below this gate
    }
    let slot = (choice as usize / 7) % net.gates()[gi].inputs.len();
    let old = net.gates()[gi].inputs[slot];
    let replacement = (old + 1 + (choice as usize / 13) % (gate_signal - 1)) % gate_signal;
    debug_assert_ne!(replacement, old);
    Some(rebuild(net, |i, inputs| {
        if i == gi {
            inputs[slot] = replacement;
        }
    }))
}

/// Swaps two output taps (a routing fault at the output crossbar).
fn swap_outputs(net: &XorNetwork, choice: u64) -> Option<XorNetwork> {
    let n_out = net.outputs().len();
    if n_out < 2 {
        return None;
    }
    let a = (choice as usize) % n_out;
    let b = (a + 1 + (choice as usize / 11) % (n_out - 1)) % n_out;
    let outs = net.outputs();
    let mut swapped = XorNetwork::new(net.n_inputs(), net.max_fanin());
    for g in net.gates() {
        swapped.add_gate(g.inputs.clone());
    }
    for (i, o) in outs.iter().enumerate() {
        let o = if i == a {
            outs[b]
        } else if i == b {
            outs[a]
        } else {
            *o
        };
        swapped.add_output(o);
    }
    Some(swapped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every synthesized network verifies against its source matrix
    /// (soundness: the checker must not cry wolf).
    #[test]
    fn synthesized_networks_always_verify(
        rows in 1usize..10,
        cols in 1usize..14,
        seed in any::<u64>(),
    ) {
        let m = random_matrix(rows, cols, seed);
        let net = synthesize(&m, SynthOptions::default());
        prop_assert!(check_network(&net, &m).is_ok(), "false positive on {net}");
    }

    /// A flipped gate input that changes the computed function must be
    /// rejected, and one that happens to preserve it must be accepted —
    /// the checker agrees exactly with the semantic oracle `to_matrix`.
    #[test]
    fn flipped_gate_inputs_are_caught(
        rows in 2usize..10,
        cols in 2usize..14,
        seed in any::<u64>(),
        choice in any::<u64>(),
    ) {
        let m = random_matrix(rows, cols, seed);
        let net = synthesize(&m, SynthOptions::default());
        let Some(mutant) = flip_gate_input(&net, choice) else {
            return Ok(()); // wire-only network: nothing to mutate
        };
        let verdict = check_network(&mutant, &m);
        if mutant.to_matrix() == m {
            prop_assert!(verdict.is_ok(), "rejected a semantics-preserving mutant");
        } else {
            prop_assert!(verdict.is_err(), "accepted a faulty mutant of {net}");
        }
    }

    /// Swapped output taps must be caught unless the swapped rows are
    /// identical (in which case the function is unchanged).
    #[test]
    fn swapped_outputs_are_caught(
        rows in 2usize..10,
        cols in 2usize..14,
        seed in any::<u64>(),
        choice in any::<u64>(),
    ) {
        let m = random_matrix(rows, cols, seed);
        let net = synthesize(&m, SynthOptions::default());
        let Some(mutant) = swap_outputs(&net, choice) else {
            return Ok(());
        };
        let verdict = check_network(&mutant, &m);
        if mutant.to_matrix() == m {
            prop_assert!(verdict.is_ok(), "rejected an identity output swap");
        } else {
            prop_assert!(verdict.is_err(), "missed a swapped output pair");
        }
    }
}

/// A guaranteed-semantics-changing mutation on a real CRC network: the
/// checker must reject it, and must localise the damage to real rows.
#[test]
fn targeted_crc_mutation_is_rejected_and_localised() {
    let spec = lfsr::crc::CrcSpec::crc32_ethernet();
    let serial = lfsr::StateSpaceLfsr::crc(&spec.generator()).expect("valid generator");
    let block = lfsr_parallel::BlockSystem::new(&serial, 32).expect("block system");
    let m = block.a_m().hstack(block.b_m());
    let net = synthesize(&m, SynthOptions::default());
    check_network(&net, &m).expect("synthesized CRC network verifies");

    // Exhaustively try single-input flips until one changes the function
    // (the first almost always does — XOR networks have no redundancy).
    let mut rejected = false;
    'outer: for choice in 0..64u64 {
        if let Some(mutant) = flip_gate_input(&net, choice) {
            if mutant.to_matrix() != m {
                let err = check_network(&mutant, &m).expect_err("mutant must be rejected");
                let diags = err.diagnostics();
                assert!(!diags.is_empty(), "rejection must carry diagnostics");
                rejected = true;
                break 'outer;
            }
        }
    }
    assert!(rejected, "no semantics-changing mutant found in 64 tries");
}
