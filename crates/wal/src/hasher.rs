//! Frame checksumming, dogfooding the paper's own CRC application.
//!
//! Every journal frame carries a CRC-32/ETHERNET over its header and
//! payload. The [`FabricHasher`] computes it through a hosted fabric
//! lane guarded by the resilience policy: when the lane is healthy the
//! checksum comes off the pipelined gate array, and when the lane has
//! degraded (an injected SEU, a forced fallback) the guarded run
//! transparently takes the Sarwate software path — so simply *framing
//! journal records* exercises the reload → re-synthesis → fallback
//! recovery ladder. The [`SoftwareHasher`] is the always-correct
//! control: a plain Sarwate kernel with no fabric underneath.

use dream::{ControlModel, Health};
use dream_lfsr::FlowOptions;
use lfsr::crc::{CrcSpec, SarwateCrc};
use picoga::PicogaParams;
use resilience::{FaultInjector, RecoveryPolicy, ResilientSystem};

/// The lane name the fabric hasher hosts its CRC personality under.
pub const WAL_LANE: &str = "wal-crc32";

/// Counters a hasher accumulates across frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HasherStats {
    /// Frames checksummed in total.
    pub frames: u64,
    /// Frames whose CRC came from the Sarwate software path.
    pub software_frames: u64,
    /// Recovery-ladder outcomes observed while checksumming.
    pub ladder_runs: u64,
    /// DMR lane disagreements caught before delivery.
    pub dmr_mismatches: u64,
}

/// Computes the CRC-32 stamped into each journal frame.
///
/// The fault hooks are default no-ops so a pure software hasher stays
/// trivially correct; the fabric hasher overrides them, which lets a
/// crash harness reach the recovery ladder through a boxed
/// `dyn FrameHasher` (e.g. via `Journal::hasher_mut`).
pub trait FrameHasher {
    /// The CRC-32/ETHERNET of `data`.
    fn crc32(&mut self, data: &[u8]) -> u32;

    /// Counters accumulated so far.
    fn stats(&self) -> HasherStats;

    /// Injects a seeded fault into the hashing substrate (no-op for
    /// hashers with no fabric underneath).
    fn inject_fault(&mut self, _seed: u64) {}

    /// Forces the degraded (software) path until [`heal`](Self::heal).
    fn degrade(&mut self) {}

    /// Attempts to restore the healthy path.
    fn heal(&mut self) {}

    /// Whether a healthy fabric lane currently backs the hasher
    /// (`false` for pure software hashers).
    fn lane_healthy(&self) -> bool {
        false
    }
}

/// The Sarwate kernel is catalogue-driven and cheap to clone per frame.
fn sarwate32(data: &[u8]) -> u32 {
    let mut k = SarwateCrc::new(CrcSpec::crc32_ethernet()).expect("width 32 ≥ 8");
    k.update(data);
    u32::try_from(k.finalize() & 0xFFFF_FFFF).expect("masked to 32 bits")
}

/// A pure software hasher: the Sarwate kernel, no fabric.
#[derive(Debug, Default)]
pub struct SoftwareHasher {
    stats: HasherStats,
}

impl SoftwareHasher {
    /// A fresh software hasher.
    #[must_use]
    pub fn new() -> Self {
        SoftwareHasher::default()
    }
}

impl FrameHasher for SoftwareHasher {
    fn crc32(&mut self, data: &[u8]) -> u32 {
        self.stats.frames += 1;
        self.stats.software_frames += 1;
        sarwate32(data)
    }

    fn stats(&self) -> HasherStats {
        self.stats
    }
}

/// A hasher backed by a resilient fabric lane hosting the Ethernet CRC
/// personality, with fault hooks so a harness can push it down the
/// recovery ladder.
pub struct FabricHasher {
    rs: ResilientSystem,
    stats: HasherStats,
}

impl std::fmt::Debug for FabricHasher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricHasher")
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl FabricHasher {
    /// Hosts a CRC-32/ETHERNET lane at datapath width M = 8 under the
    /// standard recovery ladder.
    ///
    /// # Errors
    ///
    /// `String` diagnostics when the personality cannot be built or
    /// hosted (a fabric capacity problem, not a runtime fault).
    pub fn new() -> Result<Self, String> {
        FabricHasher::with_m(8)
    }

    /// Hosts the lane at datapath width `m` (the paper's parallelism
    /// knob; the proptest suites run M ∈ {8, 32, 128}).
    ///
    /// # Errors
    ///
    /// `String` diagnostics when the personality cannot be built or
    /// hosted (a fabric capacity problem, not a runtime fault).
    pub fn with_m(m: usize) -> Result<Self, String> {
        let mut rs = ResilientSystem::new(
            PicogaParams::dream(),
            ControlModel::default(),
            RecoveryPolicy::standard(),
        );
        rs.host(
            WAL_LANE,
            CrcSpec::crc32_ethernet(),
            FlowOptions::dream_with_m(m),
        )
        .map_err(|e| format!("hosting {WAL_LANE} at M={m}: {e}"))?;
        Ok(FabricHasher {
            rs,
            stats: HasherStats::default(),
        })
    }

    /// Injects a random SEU (wire flip) into the hosted lane's resident
    /// context, seeded deterministically. The guarded checksum's next
    /// periodic self-check detects it and runs the recovery ladder.
    pub fn inject_fault(&mut self, seed: u64) {
        let mut inj = FaultInjector::new(seed);
        let resident: Vec<usize> = (0..16)
            .filter(|&slot| self.rs.system().fabric().context(slot).is_some())
            .collect();
        if resident.is_empty() {
            return;
        }
        let slot = resident[inj.rng().below(resident.len())];
        let op = self
            .rs
            .system()
            .fabric()
            .context(slot)
            .expect("listed above")
            .clone();
        if let Some(fault) = inj.random_wire_flip(slot, &op) {
            let _ = self.rs.system_mut().fabric_mut().inject(&fault);
        }
    }

    /// Forces the lane onto the software path: subsequent frames are
    /// checksummed by the Sarwate kernel until [`heal`](Self::heal).
    pub fn degrade(&mut self) {
        self.rs.system_mut().set_health(WAL_LANE, Health::Fallback);
    }

    /// Runs the recovery ladder on the lane, restoring fabric service
    /// when a rung succeeds.
    pub fn heal(&mut self) {
        if self.rs.recover(WAL_LANE).is_ok() {
            self.stats.ladder_runs += 1;
        }
    }

    /// Whether the fabric currently considers the lane healthy.
    #[must_use]
    pub fn lane_healthy(&self) -> bool {
        self.rs.health_summary().fallback == 0
    }
}

impl FrameHasher for FabricHasher {
    fn inject_fault(&mut self, seed: u64) {
        FabricHasher::inject_fault(self, seed);
    }

    fn degrade(&mut self) {
        FabricHasher::degrade(self);
    }

    fn heal(&mut self) {
        FabricHasher::heal(self);
    }

    fn lane_healthy(&self) -> bool {
        FabricHasher::lane_healthy(self)
    }

    fn crc32(&mut self, data: &[u8]) -> u32 {
        self.stats.frames += 1;
        match self.rs.checksum_guarded(WAL_LANE, data) {
            Ok(run) => {
                if run.software {
                    self.stats.software_frames += 1;
                }
                if run.dmr_mismatch {
                    self.stats.dmr_mismatches += 1;
                }
                self.stats.ladder_runs += run.outcomes.len() as u64;
                u32::try_from(run.crc & 0xFFFF_FFFF).expect("masked to 32 bits")
            }
            Err(_) => {
                // The guarded path failed outright (lane evicted mid-
                // recovery); the journal must still frame correctly, so
                // fall back to the software kernel and count it.
                self.stats.software_frames += 1;
                sarwate32(data)
            }
        }
    }

    fn stats(&self) -> HasherStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfsr::crc::crc_bitwise;

    #[test]
    fn software_hasher_matches_bitwise_reference() {
        let mut h = SoftwareHasher::new();
        let data = b"123456789";
        let want =
            u32::try_from(crc_bitwise(CrcSpec::crc32_ethernet(), data) & 0xFFFF_FFFF).unwrap();
        assert_eq!(h.crc32(data), want);
        assert_eq!(h.stats().frames, 1);
        assert_eq!(h.stats().software_frames, 1);
    }

    #[test]
    fn fabric_hasher_agrees_with_software() {
        let mut fab = FabricHasher::new().expect("host");
        let mut soft = SoftwareHasher::new();
        for data in [&b"abc"[..], &[0u8; 64][..], &b"journal frame"[..]] {
            assert_eq!(fab.crc32(data), soft.crc32(data));
        }
        assert_eq!(fab.stats().frames, 3);
    }

    #[test]
    fn degraded_lane_takes_software_path_and_heals() {
        let mut fab = FabricHasher::new().expect("host");
        let healthy = fab.crc32(b"before");
        assert_eq!(fab.stats().software_frames, 0);

        fab.degrade();
        assert!(!fab.lane_healthy());
        let degraded = fab.crc32(b"before");
        assert_eq!(degraded, healthy, "software path computes the same CRC");
        assert!(fab.stats().software_frames >= 1);

        fab.heal();
        assert!(fab.stats().ladder_runs >= 1, "healing ran the ladder");
        assert!(fab.lane_healthy());
        assert_eq!(fab.crc32(b"before"), healthy);
    }

    #[test]
    fn injected_fault_is_survived() {
        let mut fab = FabricHasher::new().expect("host");
        let mut soft = SoftwareHasher::new();
        fab.inject_fault(0xC0FF_EE00);
        // The guarded run's periodic self-check (scrub period 4) must
        // catch the SEU within a few frames; every delivered CRC stays
        // correct throughout.
        for i in 0..12u8 {
            let data = [i; 24];
            assert_eq!(fab.crc32(&data), soft.crc32(&data), "frame {i}");
        }
    }
}
