//! The append-only journal: CRC-32-framed records over a storage
//! backend, and the replay that survives torn tails, bit rot and
//! duplicated appends.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! ┌─────────┬────────┬─────────┬───────────────┬─────────┐
//! │ len u32 │ ver u8 │ seq u64 │ payload (len) │ crc u32 │
//! └─────────┴────────┴─────────┴───────────────┴─────────┘
//!            └────────── CRC-32/ETHERNET ─────┘
//! ```
//!
//! `len` counts only the payload. `seq` is a strictly increasing frame
//! number, which is what makes duplicated appends detectable. The CRC
//! covers `ver ‖ seq ‖ payload` — not `len`, because a corrupted `len`
//! makes the frame boundary itself untrustworthy and is classified as
//! a torn tail.
//!
//! **The torn-tail rule.** Replay distinguishes two corruptions:
//!
//! * a frame whose bytes are all present but whose CRC disagrees is
//!   *bit rot* — count it, skip it, keep replaying, because every
//!   frame behind it was durable long before the rot;
//! * a frame that runs past the end of the log (or whose `len` is
//!   absurd) is a *torn tail* — the crash cut a write short, nothing
//!   after this point was ever acknowledged, so replay **stops**.
//!
//! Replaying past a torn tail would fabricate acknowledged state from
//! garbage; `analyze::JournalModel` checks exactly this rule.

use crate::hasher::FrameHasher;
use crate::record::{Record, WIRE_VERSION};
use crate::storage::StorageBackend;

/// Frame header bytes preceding the payload: `len` + `ver` + `seq`.
pub const FRAME_HEADER: usize = 4 + 1 + 8;

/// Trailer bytes after the payload: the CRC.
pub const FRAME_TRAILER: usize = 4;

/// Payloads above this are never written; replay treats a larger `len`
/// as a torn tail (a length field made of garbage).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Counters a journal accumulates while appending.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Frames appended.
    pub frames: u64,
    /// Payload + framing bytes appended.
    pub bytes: u64,
    /// Flushes issued.
    pub flushes: u64,
}

/// An append-only record journal over a [`StorageBackend`].
pub struct Journal {
    backend: Box<dyn StorageBackend>,
    hasher: Box<dyn FrameHasher>,
    next_seq: u64,
    stats: JournalStats,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("next_seq", &self.next_seq)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// What one replay of the durable bytes found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Accepted records in journal order, with their frame sequence
    /// numbers.
    pub records: Vec<(u64, Record)>,
    /// Frames that verified and decoded.
    pub frames_ok: u64,
    /// `true` when replay stopped at a torn tail.
    pub torn_tail: bool,
    /// Complete frames whose CRC disagreed (bit rot): skipped.
    pub corrupt_frames: u64,
    /// Frames replaying an already-seen sequence number (duplicated
    /// appends): skipped.
    pub duplicate_frames: u64,
    /// Verified frames whose payload failed to decode: skipped.
    pub decode_errors: u64,
    /// Durable bytes examined (through the last accepted frame).
    pub bytes_scanned: usize,
}

impl Replay {
    /// `true` when every durable byte replayed cleanly.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.torn_tail
            && self.corrupt_frames == 0
            && self.duplicate_frames == 0
            && self.decode_errors == 0
    }
}

/// Replays `bytes` (a durable journal image) with `hasher` verifying
/// each frame's CRC. Implements the torn-tail rule documented at the
/// module level.
#[must_use]
pub fn replay_bytes(bytes: &[u8], hasher: &mut dyn FrameHasher) -> Replay {
    let mut out = Replay {
        records: Vec::new(),
        frames_ok: 0,
        torn_tail: false,
        corrupt_frames: 0,
        duplicate_frames: 0,
        decode_errors: 0,
        bytes_scanned: 0,
    };
    let mut pos = 0usize;
    let mut last_seq: Option<u64> = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER + FRAME_TRAILER {
            out.torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        if len > MAX_PAYLOAD || (len as usize) > remaining - FRAME_HEADER - FRAME_TRAILER {
            out.torn_tail = true;
            break;
        }
        let len = len as usize;
        let body = &bytes[pos + 4..pos + 4 + 1 + 8 + len]; // ver ‖ seq ‖ payload
        let crc_at = pos + FRAME_HEADER + len;
        let stored = u32::from_le_bytes(bytes[crc_at..crc_at + 4].try_into().expect("4"));
        let frame_end = crc_at + 4;
        if hasher.crc32(body) != stored {
            out.corrupt_frames += 1;
            pos = frame_end;
            continue;
        }
        let ver = body[0];
        let seq = u64::from_le_bytes(body[1..9].try_into().expect("8"));
        if ver != WIRE_VERSION {
            // A verified frame from a future format: skip it rather
            // than misparse it.
            out.decode_errors += 1;
            pos = frame_end;
            continue;
        }
        if last_seq.is_some_and(|prev| seq <= prev) {
            out.duplicate_frames += 1;
            pos = frame_end;
            continue;
        }
        match Record::decode(&body[9..]) {
            Ok(rec) => {
                last_seq = Some(seq);
                out.frames_ok += 1;
                out.records.push((seq, rec));
                out.bytes_scanned = frame_end;
            }
            Err(_) => {
                out.decode_errors += 1;
            }
        }
        pos = frame_end;
    }
    out
}

impl Journal {
    /// A journal over an empty (or to-be-overwritten) backend, writing
    /// frames from sequence 1.
    #[must_use]
    pub fn new(backend: Box<dyn StorageBackend>, hasher: Box<dyn FrameHasher>) -> Self {
        Journal {
            backend,
            hasher,
            next_seq: 1,
            stats: JournalStats::default(),
        }
    }

    /// Opens a journal over a backend that may already hold frames —
    /// the crash-restart path. Replays the durable bytes, positions
    /// the writer after the last accepted sequence number, and
    /// truncates whatever the crash left past it (a torn tail is a
    /// replay STOP condition, so garbage left in place would strand
    /// every frame the new epoch appends behind it — the next replay
    /// would stop at the old tear and never reach them).
    #[must_use]
    pub fn recover(
        mut backend: Box<dyn StorageBackend>,
        mut hasher: Box<dyn FrameHasher>,
    ) -> (Self, Replay) {
        let replay = replay_bytes(&backend.durable(), hasher.as_mut());
        backend.truncate(replay.bytes_scanned);
        let next_seq = replay.records.last().map_or(1, |(seq, _)| seq + 1);
        (
            Journal {
                backend,
                hasher,
                next_seq,
                stats: JournalStats::default(),
            },
            replay,
        )
    }

    /// Appends one record as a framed, CRC'd write. Durable only after
    /// [`flush`](Self::flush).
    pub fn append(&mut self, rec: &Record) {
        let payload = rec.encode();
        let len = u32::try_from(payload.len()).expect("payload fits u32");
        assert!(len <= MAX_PAYLOAD, "record payload exceeds MAX_PAYLOAD");
        let mut body = Vec::with_capacity(1 + 8 + payload.len());
        body.push(WIRE_VERSION);
        body.extend_from_slice(&self.next_seq.to_le_bytes());
        body.extend_from_slice(&payload);
        let crc = self.hasher.crc32(&body);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len() + FRAME_TRAILER);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.backend.append(&frame);
        self.next_seq += 1;
        self.stats.frames += 1;
        self.stats.bytes += frame.len() as u64;
    }

    /// Makes every appended frame durable.
    pub fn flush(&mut self) {
        self.backend.flush();
        self.stats.flushes += 1;
    }

    /// The next frame sequence number.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append-side counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The hasher's accumulated counters (frames, software path,
    /// ladder runs).
    #[must_use]
    pub fn hasher_stats(&self) -> crate::hasher::HasherStats {
        self.hasher.stats()
    }

    /// Mutable access to the frame hasher, for harnesses that inject
    /// fabric faults or force the software path.
    pub fn hasher_mut(&mut self) -> &mut dyn FrameHasher {
        self.hasher.as_mut()
    }

    /// Replays the currently durable bytes without disturbing the
    /// writer (diagnostics; recovery uses [`Journal::recover`]).
    #[must_use]
    pub fn replay_durable(&mut self) -> Replay {
        let bytes = self.backend.durable();
        replay_bytes(&bytes, self.hasher.as_mut())
    }
}

/// Walks the complete frames in `bytes` and returns the byte range of
/// each frame's *payload* (after `ver`/`seq`). A bit-rot fault uses
/// this to pick a cold byte that corrupts record content rather than
/// the frame geometry, keeping the damage CRC-detectable instead of
/// boundary-destroying.
#[must_use]
pub fn payload_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + FRAME_HEADER + FRAME_TRAILER <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        if len > MAX_PAYLOAD {
            break;
        }
        let len = len as usize;
        let end = pos + FRAME_HEADER + len + FRAME_TRAILER;
        if end > bytes.len() {
            break;
        }
        if len > 0 {
            out.push((pos + FRAME_HEADER, pos + FRAME_HEADER + len));
        }
        pos = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::SoftwareHasher;
    use crate::storage::{CrashKind, SharedDisk, SimDisk};

    fn sample(n: u64) -> Vec<Record> {
        (0..n)
            .map(|i| match i % 3 {
                0 => Record::Clock { now: i },
                1 => Record::Open {
                    id: i,
                    shard: u32::try_from(i % 4).unwrap(),
                    personality: format!("eth{i}"),
                },
                _ => Record::FeedWatermark {
                    id: i,
                    bytes_fed: i * 7,
                },
            })
            .collect()
    }

    fn journal_with(records: &[Record]) -> (Journal, SharedDisk) {
        let disk = SharedDisk::new();
        let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        for r in records {
            j.append(r);
        }
        j.flush();
        (j, disk)
    }

    #[test]
    fn append_replay_round_trips() {
        let recs = sample(9);
        let (mut j, _disk) = journal_with(&recs);
        let replay = j.replay_durable();
        assert!(replay.clean());
        assert_eq!(replay.frames_ok, 9);
        let got: Vec<Record> = replay.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, recs);
    }

    #[test]
    fn unflushed_suffix_is_lost_on_crash() {
        let disk = SharedDisk::new();
        let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        j.append(&Record::Clock { now: 1 });
        j.flush();
        j.append(&Record::Clock { now: 2 });
        disk.crash(CrashKind::LostSuffix);
        let (j2, replay) = Journal::recover(Box::new(disk), Box::new(SoftwareHasher::new()));
        assert!(replay.clean());
        assert_eq!(replay.frames_ok, 1);
        assert_eq!(replay.records[0].1, Record::Clock { now: 1 });
        assert_eq!(j2.next_seq(), 2, "writer resumes after the survivor");
    }

    #[test]
    fn torn_tail_stops_replay() {
        let disk = SharedDisk::new();
        let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        j.append(&Record::Clock { now: 1 });
        j.flush();
        j.append(&Record::Finish { id: 7 });
        // Tear mid-frame: keep a strict prefix of the pending frame.
        disk.crash(CrashKind::Torn { keep: 5 });
        let (_, replay) = Journal::recover(Box::new(disk), Box::new(SoftwareHasher::new()));
        assert!(replay.torn_tail);
        assert_eq!(replay.frames_ok, 1, "records before the tear survive");
        assert_eq!(replay.corrupt_frames, 0, "a tear is not bit rot");
    }

    #[test]
    fn bit_rot_is_skipped_not_fatal() {
        let recs = sample(5);
        let (_, disk) = journal_with(&recs);
        let durable = disk.durable();
        let ranges = payload_ranges(&durable);
        assert_eq!(ranges.len(), 5);
        // Rot a payload byte of the middle frame.
        disk.corrupt_byte(ranges[2].0, 0x40);
        let (_, replay) = Journal::recover(Box::new(disk), Box::new(SoftwareHasher::new()));
        assert!(!replay.torn_tail);
        assert_eq!(replay.corrupt_frames, 1);
        assert_eq!(replay.frames_ok, 4, "frames around the rot replay fine");
    }

    #[test]
    fn duplicated_append_is_deduplicated_by_seq() {
        let disk = SharedDisk::new();
        let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        j.append(&Record::Clock { now: 1 });
        disk.arm_duplicate();
        j.append(&Record::Finish { id: 3 });
        j.append(&Record::Clock { now: 2 });
        j.flush();
        let (_, replay) = Journal::recover(Box::new(disk), Box::new(SoftwareHasher::new()));
        assert_eq!(replay.duplicate_frames, 1);
        assert_eq!(replay.frames_ok, 3);
        assert_eq!(
            replay
                .records
                .iter()
                .filter(|(_, r)| *r == Record::Finish { id: 3 })
                .count(),
            1,
            "the duplicated frame applies once"
        );
    }

    #[test]
    fn absurd_length_field_is_a_torn_tail() {
        let mut disk = SimDisk::new();
        {
            let d: &mut dyn StorageBackend = &mut disk;
            d.append(&(MAX_PAYLOAD + 1).to_le_bytes());
            d.append(&[0u8; 32]);
            d.flush();
        }
        let mut h = SoftwareHasher::new();
        let replay = replay_bytes(&disk.durable(), &mut h);
        assert!(replay.torn_tail);
        assert_eq!(replay.frames_ok, 0);
    }

    #[test]
    fn recovered_journal_appends_a_new_epoch() {
        let recs = sample(4);
        let (_, disk) = journal_with(&recs);
        disk.crash(CrashKind::LostSuffix); // no-op: everything flushed
        let (mut j2, replay) =
            Journal::recover(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        assert_eq!(replay.frames_ok, 4);
        j2.append(&Record::Clock { now: 99 });
        j2.flush();
        let (_, replay2) = Journal::recover(Box::new(disk), Box::new(SoftwareHasher::new()));
        assert!(replay2.clean());
        assert_eq!(replay2.frames_ok, 5);
        assert_eq!(replay2.records.last().unwrap().1, Record::Clock { now: 99 });
    }
}
