//! Crash-consistent durability for the picolfsr cluster control plane.
//!
//! A serving stack built on the paper's adaptive DSP cannot ship
//! without crash consistency: checkpoints, placements, breaker state
//! and idempotency tokens all live in memory, and a whole-process
//! crash loses every one of them. This crate is the durability layer:
//!
//! * [`Journal`] — an append-only log of versioned, length-prefixed,
//!   CRC-32-framed [`Record`]s over a [`StorageBackend`];
//! * [`SimDisk`] / [`SharedDisk`] — a simulated disk with partial
//!   flush, so crashes can tear writes, lose unflushed suffixes, rot
//!   cold bytes and duplicate appends — all byte-reproducible;
//! * [`FabricHasher`] — frame CRCs computed through the fabric's own
//!   CRC-32/ETHERNET personality under the resilience policy, falling
//!   back to the Sarwate kernel when the lane degrades, so journal
//!   framing itself dogfoods the recovery ladder the paper's CRC
//!   application makes possible;
//! * [`replay_bytes`] — recovery replay implementing the torn-tail
//!   rule: bit rot is skipped and counted, a torn tail stops replay.
//!
//! `cluster::Cluster` journals its control-plane transitions through
//! this crate and rebuilds itself from a replay after a crash; the
//! `crash_storm` bench harness kills and recovers whole clusters under
//! seeded storage faults and gates the result.

pub mod hasher;
pub mod journal;
pub mod record;
pub mod storage;

pub use hasher::{FabricHasher, FrameHasher, HasherStats, SoftwareHasher, WAL_LANE};
pub use journal::{
    payload_ranges, replay_bytes, Journal, JournalStats, Replay, FRAME_HEADER, FRAME_TRAILER,
    MAX_PAYLOAD,
};
pub use record::{DecodeError, Record, WIRE_VERSION};
pub use storage::{CrashKind, DiskStats, SharedDisk, SimDisk, StorageBackend};
