//! The journal's record vocabulary and its wire encoding.
//!
//! Records are the control-plane facts a crashed cluster needs to
//! rebuild itself: hosted personalities, stream lifecycle (open, feed
//! watermarks, finish), checkpoint anchors (the only durable copy of a
//! stream's state), tokenized migrations (begin / applied / abort, so
//! recovery resolves in-flight transfers exactly once), shard
//! lifecycle (drain, down, reopen), breaker state, upgrade steps, and
//! typed losses.
//!
//! The encoding is hand-rolled little-endian: `tag: u8` then the
//! fields in declaration order. Strings are `u16` length + UTF-8
//! bytes; optional shard scopes are a `u8` flag followed by the value
//! only when present. The format is **pinned** — `WIRE_VERSION` frames
//! carry it, and the golden corpus test locks the bytes. Changing any
//! encoding here is a wire-format break: bump [`WIRE_VERSION`] instead
//! of mutating version 1.

/// The journal wire-format version stamped into every frame.
pub const WIRE_VERSION: u8 = 1;

/// One durable control-plane fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The cluster clock at the start of a tick.
    Clock {
        /// Tick counter value.
        now: u64,
    },
    /// A CRC personality was hosted (`shard: None` = every shard).
    HostCrc {
        /// Target shard index, or `None` for all shards.
        shard: Option<u32>,
        /// Lane name.
        name: String,
        /// Catalogue spec name (e.g. `"CRC-32/ETHERNET"`).
        spec: String,
        /// Datapath parallelism M.
        m: u8,
    },
    /// A scrambler personality was hosted (`shard: None` = every shard).
    HostScrambler {
        /// Target shard index, or `None` for all shards.
        shard: Option<u32>,
        /// Lane name.
        name: String,
        /// Catalogue spec name (e.g. `"IEEE-802.11"`).
        spec: String,
        /// Datapath parallelism M.
        m: u8,
    },
    /// A stream was admitted.
    Open {
        /// Stream id.
        id: u64,
        /// Shard it landed on.
        shard: u32,
        /// Personality lane it runs on.
        personality: String,
    },
    /// Cumulative bytes fed to a stream (diagnostic watermark).
    FeedWatermark {
        /// Stream id.
        id: u64,
        /// Total bytes accepted so far.
        bytes_fed: u64,
    },
    /// A stream completed and left the control plane.
    Finish {
        /// Stream id.
        id: u64,
    },
    /// A checkpoint anchor: the durable snapshot recovery restores
    /// from. Supersedes any earlier anchor for the same stream.
    CheckpointAnchor {
        /// Stream id.
        id: u64,
        /// Shard the stream was on when captured.
        shard: u32,
        /// Byte offset the client must rewind its feed to.
        resume_from: u64,
        /// Output bits already delivered at capture time.
        delivered_bits: u64,
        /// Opaque checkpoint snapshot bytes.
        bytes: Vec<u8>,
    },
    /// A tokenized migration started.
    MigrateBegin {
        /// Idempotency token.
        token: u64,
        /// Stream id.
        id: u64,
        /// Source shard.
        from: u32,
        /// Target shard.
        to: u32,
    },
    /// A migration's transfer landed (any path: tokenized, drain,
    /// rebalance, probe). The stream now routes to `to`.
    Migrated {
        /// Stream id.
        id: u64,
        /// Source shard.
        from: u32,
        /// Target shard.
        to: u32,
    },
    /// A tokenized migration failed and was undone.
    MigrateAbort {
        /// Idempotency token.
        token: u64,
        /// Stream id.
        id: u64,
    },
    /// A token entered the ledger: the operation's effect committed.
    TokenApplied {
        /// Idempotency token.
        token: u64,
        /// Stream the operation acted on.
        id: u64,
    },
    /// A shard was fenced for draining.
    Drain {
        /// Shard index.
        shard: u32,
    },
    /// A shard went down (`reason` is a `cluster::DownReason` code).
    ShardDown {
        /// Shard index.
        shard: u32,
        /// Down-reason code.
        reason: u8,
    },
    /// A drained shard was brought back with a fresh fabric.
    Reopen {
        /// Shard index.
        shard: u32,
    },
    /// A shard's circuit breaker changed state.
    Breaker {
        /// Shard index.
        shard: u32,
        /// Breaker rank (closed/open/half-open).
        rank: u8,
        /// Rank-local progress counter.
        count: u32,
    },
    /// A rolling-upgrade step was taken.
    UpgradeStage {
        /// Stage label.
        stage: String,
    },
    /// A stream was declared lost (`reason` is a `cluster::LossReason`
    /// code).
    Lost {
        /// Stream id.
        id: u64,
        /// Shard it was lost from.
        shard: u32,
        /// Loss-reason code.
        reason: u8,
    },
    /// A stream failed over from a dead shard to a survivor.
    Failover {
        /// Stream id.
        id: u64,
        /// Dead source shard.
        from: u32,
        /// Surviving target shard.
        to: u32,
    },
}

/// Why a record payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before the field at `offset` was complete.
    Truncated {
        /// Byte offset where the reader ran dry.
        offset: usize,
    },
    /// An unknown record tag.
    UnknownTag {
        /// The tag byte.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadString {
        /// Byte offset of the string field.
        offset: usize,
    },
    /// Bytes remained after the last field of the record.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { offset } => write!(f, "payload truncated at byte {offset}"),
            DecodeError::UnknownTag { tag } => write!(f, "unknown record tag {tag}"),
            DecodeError::BadString { offset } => write!(f, "invalid UTF-8 at byte {offset}"),
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

const TAG_CLOCK: u8 = 1;
const TAG_HOST_CRC: u8 = 2;
const TAG_HOST_SCRAMBLER: u8 = 3;
const TAG_OPEN: u8 = 4;
const TAG_FEED_WATERMARK: u8 = 5;
const TAG_FINISH: u8 = 6;
const TAG_CHECKPOINT_ANCHOR: u8 = 7;
const TAG_MIGRATE_BEGIN: u8 = 8;
const TAG_MIGRATED: u8 = 9;
const TAG_MIGRATE_ABORT: u8 = 10;
const TAG_TOKEN_APPLIED: u8 = 11;
const TAG_DRAIN: u8 = 12;
const TAG_SHARD_DOWN: u8 = 13;
const TAG_REOPEN: u8 = 14;
const TAG_BREAKER: u8 = 15;
const TAG_UPGRADE_STAGE: u8 = 16;
const TAG_LOST: u8 = 17;
const TAG_FAILOVER: u8 = 18;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("journal strings are short");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_u32(out, x);
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    let len = u32::try_from(b.len()).expect("snapshot fits u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(b);
}

/// A bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(DecodeError::Truncated { offset: self.pos })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let at = self.pos;
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadString { offset: at })
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, DecodeError> {
        if self.u8()? == 0 {
            Ok(None)
        } else {
            Ok(Some(self.u32()?))
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), DecodeError> {
        let extra = self.buf.len() - self.pos;
        if extra == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes { extra })
        }
    }
}

impl Record {
    /// Short kind label for traces and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Record::Clock { .. } => "clock",
            Record::HostCrc { .. } => "host_crc",
            Record::HostScrambler { .. } => "host_scrambler",
            Record::Open { .. } => "open",
            Record::FeedWatermark { .. } => "feed_watermark",
            Record::Finish { .. } => "finish",
            Record::CheckpointAnchor { .. } => "checkpoint_anchor",
            Record::MigrateBegin { .. } => "migrate_begin",
            Record::Migrated { .. } => "migrated",
            Record::MigrateAbort { .. } => "migrate_abort",
            Record::TokenApplied { .. } => "token_applied",
            Record::Drain { .. } => "drain",
            Record::ShardDown { .. } => "shard_down",
            Record::Reopen { .. } => "reopen",
            Record::Breaker { .. } => "breaker",
            Record::UpgradeStage { .. } => "upgrade_stage",
            Record::Lost { .. } => "lost",
            Record::Failover { .. } => "failover",
        }
    }

    /// Encodes the record as a version-1 payload (tag + fields).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Record::Clock { now } => {
                out.push(TAG_CLOCK);
                put_u64(&mut out, *now);
            }
            Record::HostCrc {
                shard,
                name,
                spec,
                m,
            } => {
                out.push(TAG_HOST_CRC);
                put_opt_u32(&mut out, *shard);
                put_str(&mut out, name);
                put_str(&mut out, spec);
                out.push(*m);
            }
            Record::HostScrambler {
                shard,
                name,
                spec,
                m,
            } => {
                out.push(TAG_HOST_SCRAMBLER);
                put_opt_u32(&mut out, *shard);
                put_str(&mut out, name);
                put_str(&mut out, spec);
                out.push(*m);
            }
            Record::Open {
                id,
                shard,
                personality,
            } => {
                out.push(TAG_OPEN);
                put_u64(&mut out, *id);
                put_u32(&mut out, *shard);
                put_str(&mut out, personality);
            }
            Record::FeedWatermark { id, bytes_fed } => {
                out.push(TAG_FEED_WATERMARK);
                put_u64(&mut out, *id);
                put_u64(&mut out, *bytes_fed);
            }
            Record::Finish { id } => {
                out.push(TAG_FINISH);
                put_u64(&mut out, *id);
            }
            Record::CheckpointAnchor {
                id,
                shard,
                resume_from,
                delivered_bits,
                bytes,
            } => {
                out.push(TAG_CHECKPOINT_ANCHOR);
                put_u64(&mut out, *id);
                put_u32(&mut out, *shard);
                put_u64(&mut out, *resume_from);
                put_u64(&mut out, *delivered_bits);
                put_bytes(&mut out, bytes);
            }
            Record::MigrateBegin {
                token,
                id,
                from,
                to,
            } => {
                out.push(TAG_MIGRATE_BEGIN);
                put_u64(&mut out, *token);
                put_u64(&mut out, *id);
                put_u32(&mut out, *from);
                put_u32(&mut out, *to);
            }
            Record::Migrated { id, from, to } => {
                out.push(TAG_MIGRATED);
                put_u64(&mut out, *id);
                put_u32(&mut out, *from);
                put_u32(&mut out, *to);
            }
            Record::MigrateAbort { token, id } => {
                out.push(TAG_MIGRATE_ABORT);
                put_u64(&mut out, *token);
                put_u64(&mut out, *id);
            }
            Record::TokenApplied { token, id } => {
                out.push(TAG_TOKEN_APPLIED);
                put_u64(&mut out, *token);
                put_u64(&mut out, *id);
            }
            Record::Drain { shard } => {
                out.push(TAG_DRAIN);
                put_u32(&mut out, *shard);
            }
            Record::ShardDown { shard, reason } => {
                out.push(TAG_SHARD_DOWN);
                put_u32(&mut out, *shard);
                out.push(*reason);
            }
            Record::Reopen { shard } => {
                out.push(TAG_REOPEN);
                put_u32(&mut out, *shard);
            }
            Record::Breaker { shard, rank, count } => {
                out.push(TAG_BREAKER);
                put_u32(&mut out, *shard);
                out.push(*rank);
                put_u32(&mut out, *count);
            }
            Record::UpgradeStage { stage } => {
                out.push(TAG_UPGRADE_STAGE);
                put_str(&mut out, stage);
            }
            Record::Lost { id, shard, reason } => {
                out.push(TAG_LOST);
                put_u64(&mut out, *id);
                put_u32(&mut out, *shard);
                out.push(*reason);
            }
            Record::Failover { id, from, to } => {
                out.push(TAG_FAILOVER);
                put_u64(&mut out, *id);
                put_u32(&mut out, *from);
                put_u32(&mut out, *to);
            }
        }
        out
    }

    /// Decodes one version-1 payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] when the payload is truncated, carries an
    /// unknown tag, holds invalid UTF-8, or has trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Record, DecodeError> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_CLOCK => Record::Clock { now: r.u64()? },
            TAG_HOST_CRC => Record::HostCrc {
                shard: r.opt_u32()?,
                name: r.string()?,
                spec: r.string()?,
                m: r.u8()?,
            },
            TAG_HOST_SCRAMBLER => Record::HostScrambler {
                shard: r.opt_u32()?,
                name: r.string()?,
                spec: r.string()?,
                m: r.u8()?,
            },
            TAG_OPEN => Record::Open {
                id: r.u64()?,
                shard: r.u32()?,
                personality: r.string()?,
            },
            TAG_FEED_WATERMARK => Record::FeedWatermark {
                id: r.u64()?,
                bytes_fed: r.u64()?,
            },
            TAG_FINISH => Record::Finish { id: r.u64()? },
            TAG_CHECKPOINT_ANCHOR => Record::CheckpointAnchor {
                id: r.u64()?,
                shard: r.u32()?,
                resume_from: r.u64()?,
                delivered_bits: r.u64()?,
                bytes: r.bytes()?,
            },
            TAG_MIGRATE_BEGIN => Record::MigrateBegin {
                token: r.u64()?,
                id: r.u64()?,
                from: r.u32()?,
                to: r.u32()?,
            },
            TAG_MIGRATED => Record::Migrated {
                id: r.u64()?,
                from: r.u32()?,
                to: r.u32()?,
            },
            TAG_MIGRATE_ABORT => Record::MigrateAbort {
                token: r.u64()?,
                id: r.u64()?,
            },
            TAG_TOKEN_APPLIED => Record::TokenApplied {
                token: r.u64()?,
                id: r.u64()?,
            },
            TAG_DRAIN => Record::Drain { shard: r.u32()? },
            TAG_SHARD_DOWN => Record::ShardDown {
                shard: r.u32()?,
                reason: r.u8()?,
            },
            TAG_REOPEN => Record::Reopen { shard: r.u32()? },
            TAG_BREAKER => Record::Breaker {
                shard: r.u32()?,
                rank: r.u8()?,
                count: r.u32()?,
            },
            TAG_UPGRADE_STAGE => Record::UpgradeStage { stage: r.string()? },
            TAG_LOST => Record::Lost {
                id: r.u64()?,
                shard: r.u32()?,
                reason: r.u8()?,
            },
            TAG_FAILOVER => Record::Failover {
                id: r.u64()?,
                from: r.u32()?,
                to: r.u32()?,
            },
            tag => return Err(DecodeError::UnknownTag { tag }),
        };
        r.finish()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One of every record kind, with non-trivial field values.
    pub(crate) fn specimens() -> Vec<Record> {
        vec![
            Record::Clock { now: 42 },
            Record::HostCrc {
                shard: None,
                name: "eth8".into(),
                spec: "CRC-32/ETHERNET".into(),
                m: 8,
            },
            Record::HostCrc {
                shard: Some(2),
                name: "eth32".into(),
                spec: "CRC-32/ETHERNET".into(),
                m: 32,
            },
            Record::HostScrambler {
                shard: Some(1),
                name: "wifi16".into(),
                spec: "IEEE-802.11".into(),
                m: 16,
            },
            Record::Open {
                id: 7,
                shard: 1,
                personality: "eth8".into(),
            },
            Record::FeedWatermark {
                id: 7,
                bytes_fed: 96,
            },
            Record::Finish { id: 7 },
            Record::CheckpointAnchor {
                id: 9,
                shard: 0,
                resume_from: 64,
                delivered_bits: 448,
                bytes: vec![0xAB; 17],
            },
            Record::MigrateBegin {
                token: 0xDEAD_BEEF,
                id: 9,
                from: 0,
                to: 2,
            },
            Record::Migrated {
                id: 9,
                from: 0,
                to: 2,
            },
            Record::MigrateAbort {
                token: 0xDEAD_BEEF,
                id: 9,
            },
            Record::TokenApplied {
                token: 0xDEAD_BEEF,
                id: 9,
            },
            Record::Drain { shard: 3 },
            Record::ShardDown {
                shard: 3,
                reason: 0,
            },
            Record::Reopen { shard: 3 },
            Record::Breaker {
                shard: 1,
                rank: 2,
                count: 1,
            },
            Record::UpgradeStage {
                stage: "cordon:2".into(),
            },
            Record::Lost {
                id: 11,
                shard: 2,
                reason: 1,
            },
            Record::Failover {
                id: 12,
                from: 2,
                to: 0,
            },
        ]
    }

    #[test]
    fn every_record_round_trips() {
        for rec in specimens() {
            let enc = rec.encode();
            let dec = Record::decode(&enc).expect("round trip");
            assert_eq!(dec, rec, "{}", rec.label());
            // Re-encoding the decode is byte-identical (canonical form).
            assert_eq!(dec.encode(), enc);
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        assert_eq!(
            Record::decode(&[0xEE]),
            Err(DecodeError::UnknownTag { tag: 0xEE })
        );
    }

    #[test]
    fn truncation_is_typed_at_every_cut() {
        for rec in specimens() {
            let enc = rec.encode();
            for cut in 0..enc.len() {
                let err = Record::decode(&enc[..cut]).expect_err("truncated must fail");
                assert!(
                    matches!(
                        err,
                        DecodeError::Truncated { .. } | DecodeError::TrailingBytes { .. }
                    ),
                    "{}[..{cut}] gave {err:?}",
                    rec.label()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = Record::Finish { id: 1 }.encode();
        enc.push(0);
        assert_eq!(
            Record::decode(&enc),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
    }
}
