//! The storage layer under the journal: a trait for append-only byte
//! devices and a simulated disk with partial-flush semantics.
//!
//! The simulated disk models the one property the journal's recovery
//! logic exists to survive: an `append` is **not** durable until a
//! `flush`, and a crash in the flush window can persist any byte
//! *prefix* of the pending data — including a prefix that ends in the
//! middle of a frame (a torn write). Cold (already durable) bytes can
//! additionally rot: a storage fault flips a byte long after the frame
//! was written, which replay must detect by CRC and skip without
//! derailing the records behind it.

use std::cell::RefCell;
use std::rc::Rc;

/// An append-only byte device with explicit durability.
pub trait StorageBackend {
    /// Queues `bytes` at the end of the device. Not durable yet.
    fn append(&mut self, bytes: &[u8]);

    /// Makes every queued byte durable.
    fn flush(&mut self);

    /// The bytes that would survive a crash right now.
    fn durable(&self) -> Vec<u8>;

    /// Durable length in bytes.
    fn durable_len(&self) -> usize;

    /// Total length including the unflushed suffix.
    fn total_len(&self) -> usize;

    /// Discards durable bytes past `len` (recovery cutting off a
    /// damaged tail so new appends are reachable by future replays).
    /// No-op when `len` is at or past the durable end.
    fn truncate(&mut self, len: usize);
}

/// How a crash treats the unflushed suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// The whole pending suffix is lost (the common case: nothing of
    /// the in-flight flush reached the platter).
    LostSuffix,
    /// A torn write: the first `keep` bytes of the pending suffix were
    /// persisted before power was cut, possibly splitting a frame.
    Torn {
        /// Pending-suffix bytes that made it to durable storage.
        keep: usize,
    },
}

impl CrashKind {
    /// Short label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CrashKind::LostSuffix => "lost_suffix",
            CrashKind::Torn { .. } => "torn_tail",
        }
    }
}

/// Counters the simulated disk keeps about the faults applied to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// `flush` calls.
    pub flushes: u64,
    /// Crashes applied (any kind).
    pub crashes: u64,
    /// Crashes that persisted a partial (torn) suffix.
    pub torn_tails: u64,
    /// Durable bytes corrupted in place (bit rot).
    pub rotted_bytes: u64,
    /// Appends that were written twice by an armed duplication fault.
    pub duplicated_appends: u64,
    /// Damaged tail bytes recovery truncated away.
    pub truncated_bytes: u64,
}

/// An in-memory disk: a durable prefix plus an unflushed pending
/// suffix, with fault hooks for crashes, bit rot and duplicated
/// appends.
#[derive(Debug, Default)]
pub struct SimDisk {
    durable: Vec<u8>,
    pending: Vec<u8>,
    dup_armed: bool,
    stats: DiskStats,
}

impl SimDisk {
    /// An empty disk.
    #[must_use]
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Fault counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Unflushed bytes currently at risk.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Arms a duplicated-append fault: the next `append` is written
    /// twice back to back (a retried write whose first attempt silently
    /// succeeded).
    pub fn arm_duplicate(&mut self) {
        self.dup_armed = true;
    }

    /// Crashes the disk: the pending suffix is dropped, except for the
    /// prefix a torn write managed to persist.
    pub fn crash(&mut self, kind: CrashKind) {
        self.stats.crashes += 1;
        if let CrashKind::Torn { keep } = kind {
            let keep = keep.min(self.pending.len());
            if keep > 0 {
                self.stats.torn_tails += 1;
                self.durable.extend_from_slice(&self.pending[..keep]);
            }
        }
        self.pending.clear();
    }

    /// Flips bits in one durable (cold) byte: `durable[offset] ^= mask`.
    /// No-op when the offset is out of range or the mask is zero.
    pub fn corrupt_byte(&mut self, offset: usize, mask: u8) {
        if mask != 0 {
            if let Some(b) = self.durable.get_mut(offset) {
                *b ^= mask;
                self.stats.rotted_bytes += 1;
            }
        }
    }
}

impl StorageBackend for SimDisk {
    fn append(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
        if self.dup_armed {
            self.dup_armed = false;
            self.stats.duplicated_appends += 1;
            self.pending.extend_from_slice(bytes);
        }
    }

    fn flush(&mut self) {
        self.stats.flushes += 1;
        self.durable.append(&mut self.pending);
    }

    fn durable(&self) -> Vec<u8> {
        self.durable.clone()
    }

    fn durable_len(&self) -> usize {
        self.durable.len()
    }

    fn total_len(&self) -> usize {
        self.durable.len() + self.pending.len()
    }

    fn truncate(&mut self, len: usize) {
        if len < self.durable.len() {
            self.stats.truncated_bytes += (self.durable.len() - len) as u64;
            self.durable.truncate(len);
        }
    }
}

/// A cloneable handle to one [`SimDisk`], so a crash harness can hold
/// the disk while the journal (inside the cluster) writes to it. The
/// workspace forbids `unsafe`; shared ownership is `Rc<RefCell<_>>`.
#[derive(Debug, Clone, Default)]
pub struct SharedDisk(Rc<RefCell<SimDisk>>);

impl SharedDisk {
    /// A handle to a fresh empty disk.
    #[must_use]
    pub fn new() -> Self {
        SharedDisk::default()
    }

    /// See [`SimDisk::crash`].
    pub fn crash(&self, kind: CrashKind) {
        self.0.borrow_mut().crash(kind);
    }

    /// See [`SimDisk::corrupt_byte`].
    pub fn corrupt_byte(&self, offset: usize, mask: u8) {
        self.0.borrow_mut().corrupt_byte(offset, mask);
    }

    /// See [`SimDisk::arm_duplicate`].
    pub fn arm_duplicate(&self) {
        self.0.borrow_mut().arm_duplicate();
    }

    /// See [`SimDisk::stats`].
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.0.borrow().stats()
    }

    /// See [`SimDisk::pending_len`].
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.0.borrow().pending_len()
    }
}

impl StorageBackend for SharedDisk {
    fn append(&mut self, bytes: &[u8]) {
        self.0.borrow_mut().append(bytes);
    }

    fn flush(&mut self) {
        self.0.borrow_mut().flush();
    }

    fn durable(&self) -> Vec<u8> {
        self.0.borrow().durable()
    }

    fn durable_len(&self) -> usize {
        self.0.borrow().durable_len()
    }

    fn total_len(&self) -> usize {
        self.0.borrow().total_len()
    }

    fn truncate(&mut self, len: usize) {
        self.0.borrow_mut().truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_is_lost_on_clean_crash() {
        let mut d = SimDisk::new();
        d.append(b"abc");
        d.flush();
        d.append(b"def");
        d.crash(CrashKind::LostSuffix);
        assert_eq!(d.durable(), b"abc");
        assert_eq!(d.pending_len(), 0);
        assert_eq!(d.stats().crashes, 1);
        assert_eq!(d.stats().torn_tails, 0);
    }

    #[test]
    fn torn_crash_keeps_a_prefix() {
        let mut d = SimDisk::new();
        d.append(b"abc");
        d.flush();
        d.append(b"defgh");
        d.crash(CrashKind::Torn { keep: 2 });
        assert_eq!(d.durable(), b"abcde");
        assert_eq!(d.stats().torn_tails, 1);
    }

    #[test]
    fn duplicate_arm_fires_once() {
        let mut d = SimDisk::new();
        d.arm_duplicate();
        d.append(b"xy");
        d.append(b"z");
        d.flush();
        assert_eq!(d.durable(), b"xyxyz");
        assert_eq!(d.stats().duplicated_appends, 1);
    }

    #[test]
    fn corrupt_byte_flips_cold_data_only_in_range() {
        let mut d = SimDisk::new();
        d.append(&[0u8, 0, 0]);
        d.flush();
        d.corrupt_byte(1, 0x10);
        d.corrupt_byte(99, 0x10); // out of range: no-op
        d.corrupt_byte(0, 0); // zero mask: no-op
        assert_eq!(d.durable(), vec![0u8, 0x10, 0]);
        assert_eq!(d.stats().rotted_bytes, 1);
    }

    #[test]
    fn shared_disk_views_one_device() {
        let mut a = SharedDisk::new();
        let b = a.clone();
        a.append(b"hello");
        a.flush();
        assert_eq!(b.durable(), b"hello");
        b.crash(CrashKind::LostSuffix);
        assert_eq!(a.stats().crashes, 1);
    }
}
