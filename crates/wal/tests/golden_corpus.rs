//! Golden corpus pinning the version-1 journal wire format.
//!
//! The committed `corpus/journal_v1.bin` is a journal image holding
//! one of every record kind. These tests require today's encoder to
//! reproduce it byte-for-byte and today's replay to read it back
//! bit-exactly. If either fails, the change is a wire-format break:
//! recovery would misread journals written by the previous build. Add
//! a new `WIRE_VERSION` (and a new corpus file) instead of mutating
//! version 1.
//!
//! Regenerate (only for a deliberate, reviewed format change):
//! `cargo test -p picolfsr-wal --test golden_corpus -- --ignored`

use wal::{replay_bytes, Journal, Record, SharedDisk, SoftwareHasher, StorageBackend};

const GOLDEN_V1: &[u8] = include_bytes!("corpus/journal_v1.bin");

/// One of every record kind, with field values chosen to exercise the
/// optional-scope and string encodings. Order and values are part of
/// the pinned corpus.
fn corpus_records() -> Vec<Record> {
    vec![
        Record::Clock { now: 42 },
        Record::HostCrc {
            shard: None,
            name: "eth8".into(),
            spec: "CRC-32/ETHERNET".into(),
            m: 8,
        },
        Record::HostCrc {
            shard: Some(2),
            name: "eth32".into(),
            spec: "CRC-32/ETHERNET".into(),
            m: 32,
        },
        Record::HostScrambler {
            shard: Some(1),
            name: "wifi16".into(),
            spec: "IEEE-802.11".into(),
            m: 16,
        },
        Record::Open {
            id: 7,
            shard: 1,
            personality: "eth8".into(),
        },
        Record::FeedWatermark {
            id: 7,
            bytes_fed: 96,
        },
        Record::CheckpointAnchor {
            id: 7,
            shard: 1,
            resume_from: 64,
            delivered_bits: 448,
            bytes: vec![0xAB, 0xCD, 0xEF, 0x01, 0x23],
        },
        Record::MigrateBegin {
            token: 0xDEAD_BEEF,
            id: 7,
            from: 1,
            to: 2,
        },
        Record::Migrated {
            id: 7,
            from: 1,
            to: 2,
        },
        Record::TokenApplied {
            token: 0xDEAD_BEEF,
            id: 7,
        },
        Record::MigrateAbort {
            token: 0xFEED_F00D,
            id: 7,
        },
        Record::Drain { shard: 3 },
        Record::ShardDown {
            shard: 3,
            reason: 0,
        },
        Record::Reopen { shard: 3 },
        Record::Breaker {
            shard: 1,
            rank: 2,
            count: 1,
        },
        Record::UpgradeStage {
            stage: "cordon:2".into(),
        },
        Record::Lost {
            id: 11,
            shard: 2,
            reason: 1,
        },
        Record::Failover {
            id: 7,
            from: 2,
            to: 0,
        },
        Record::Finish { id: 7 },
    ]
}

fn build_image() -> Vec<u8> {
    let disk = SharedDisk::new();
    let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
    for r in &corpus_records() {
        j.append(r);
    }
    j.flush();
    disk.durable()
}

#[test]
fn encoder_reproduces_the_golden_image_byte_for_byte() {
    assert_eq!(
        build_image(),
        GOLDEN_V1,
        "journal v1 encoding changed — this is a wire-format break; \
         bump WIRE_VERSION and add a new corpus instead of mutating v1"
    );
}

#[test]
fn golden_image_replays_bit_exactly() {
    let mut h = SoftwareHasher::new();
    let replay = replay_bytes(GOLDEN_V1, &mut h);
    assert!(replay.clean(), "committed corpus must replay cleanly");
    let got: Vec<Record> = replay.records.into_iter().map(|(_, r)| r).collect();
    assert_eq!(got, corpus_records());
}

#[test]
fn golden_image_sequence_numbers_are_dense_from_one() {
    let mut h = SoftwareHasher::new();
    let replay = replay_bytes(GOLDEN_V1, &mut h);
    let seqs: Vec<u64> = replay.records.iter().map(|(s, _)| *s).collect();
    let want: Vec<u64> = (1..=seqs.len() as u64).collect();
    assert_eq!(seqs, want);
}

#[test]
#[ignore = "regenerates the committed golden corpus"]
fn regenerate_corpus() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let path = format!("{dir}/journal_v1.bin");
    std::fs::write(&path, build_image()).expect("write corpus");
    println!("wrote {path}");
}
