//! Property tests for the journal wire format: round-trips, torn
//! writes at every byte cut, bit rot, and fabric/software CRC
//! agreement at every supported datapath width.

use std::cell::RefCell;
use std::collections::HashMap;

use proptest::collection;
use proptest::prelude::*;
use wal::{
    payload_ranges, replay_bytes, CrashKind, FabricHasher, FrameHasher, Journal, Record,
    SharedDisk, SoftwareHasher, StorageBackend, FRAME_HEADER, FRAME_TRAILER,
};

/// Personality synthesis dominates the cost of a fabric-hasher case,
/// so every case at a given M reuses one hosted lane.
fn with_fabric<R>(m: usize, f: impl FnOnce(&mut FabricHasher) -> R) -> R {
    thread_local! {
        static CACHE: RefCell<HashMap<usize, FabricHasher>> = RefCell::new(HashMap::new());
    }
    CACHE.with(|c| {
        let mut map = c.borrow_mut();
        let h = map
            .entry(m)
            .or_insert_with(|| FabricHasher::with_m(m).expect("host wal lane"));
        f(h)
    })
}

/// Splits one random seed into the `(kind, a, b)` triple
/// [`record_from`] consumes (the vendored proptest has no tuple
/// strategies).
fn triple(seed: u64) -> (u8, u64, u64) {
    let kind = u8::try_from(seed >> 56).expect("top byte");
    (kind, seed & 0xFFFF_FFFF, (seed >> 24) & 0xFFFF_FFFF)
}

/// Decodes a `(kind, a, b)` triple into a record, covering the
/// fixed-width variants plus a string-bearing one.
fn record_from(kind: u8, a: u64, b: u64) -> Record {
    let shard = u32::try_from(a % 5).expect("small");
    match kind % 8 {
        0 => Record::Clock { now: a },
        1 => Record::Open {
            id: a,
            shard,
            personality: format!("lane{}", b % 7),
        },
        2 => Record::FeedWatermark {
            id: a,
            bytes_fed: b,
        },
        3 => Record::Finish { id: a },
        4 => Record::MigrateBegin {
            token: b,
            id: a,
            from: shard,
            to: u32::try_from(b % 5).expect("small"),
        },
        5 => Record::TokenApplied { token: b, id: a },
        6 => Record::CheckpointAnchor {
            id: a,
            shard,
            resume_from: b,
            delivered_bits: b * 8,
            bytes: a.to_le_bytes().to_vec(),
        },
        _ => Record::Breaker {
            shard,
            rank: u8::try_from(b % 3).expect("small"),
            count: u32::try_from(a % 9).expect("small"),
        },
    }
}

fn journal_image(records: &[Record]) -> (Vec<u8>, SharedDisk) {
    let disk = SharedDisk::new();
    let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
    for r in records {
        j.append(r);
    }
    j.flush();
    (disk.durable(), disk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every appended record replays back, in order, bit-exactly.
    #[test]
    fn journal_round_trips(
        seeds in collection::vec(any::<u64>(), 0..24),
    ) {
        let records: Vec<Record> = seeds
            .iter()
            .map(|&s| { let (k, a, b) = triple(s); record_from(k, a, b) })
            .collect();
        let (image, _disk) = journal_image(&records);
        let mut h = SoftwareHasher::new();
        let replay = replay_bytes(&image, &mut h);
        prop_assert!(replay.clean());
        let got: Vec<Record> = replay.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, records);
    }

    /// A torn write at ANY byte cut of the final unflushed frame obeys
    /// the torn-tail rule: all fully flushed records replay, nothing
    /// past the tear is fabricated, and a mid-frame cut is reported as
    /// a torn tail (never as bit rot).
    #[test]
    fn torn_write_at_every_cut_is_safe(
        seeds in collection::vec(any::<u64>(), 1..12),
        tail_pick in any::<u64>(),
        cut_pick in any::<usize>(),
    ) {
        let records: Vec<Record> = seeds
            .iter()
            .map(|&s| { let (k, a, b) = triple(s); record_from(k, a, b) })
            .collect();
        let tail_kind = u8::try_from(tail_pick & 0xFF).expect("masked");
        let disk = SharedDisk::new();
        let mut j = Journal::new(Box::new(disk.clone()), Box::new(SoftwareHasher::new()));
        for r in &records {
            j.append(r);
        }
        j.flush();
        // One more record, never flushed: the crash victim.
        let tail = record_from(tail_kind, 77, 99);
        j.append(&tail);
        let pending = disk.pending_len();
        let keep = cut_pick % (pending + 1);
        disk.crash(CrashKind::Torn { keep });

        let (_, replay) = Journal::recover(
            Box::new(disk),
            Box::new(SoftwareHasher::new()),
        );
        let got: Vec<Record> = replay.records.iter().map(|(_, r)| r.clone()).collect();
        if keep == pending {
            // The "tear" persisted the whole frame: a complete journal.
            prop_assert!(!replay.torn_tail);
            let mut want = records.clone();
            want.push(tail);
            prop_assert_eq!(got, want);
        } else {
            prop_assert_eq!(got, records, "flushed prefix replays exactly");
            prop_assert_eq!(replay.torn_tail, keep > 0, "partial frame ⇒ torn tail");
            prop_assert_eq!(replay.corrupt_frames, 0, "a tear is never bit rot");
        }
    }

    /// Rotting one payload byte loses exactly that frame — every
    /// neighbour replays, and replay does not stop.
    #[test]
    fn bit_rot_loses_exactly_one_frame(
        seeds in collection::vec(any::<u64>(), 1..12),
        frame_pick in any::<usize>(),
        offset_pick in any::<usize>(),
        mask_pick in any::<u8>(),
    ) {
        let records: Vec<Record> = seeds
            .iter()
            .map(|&s| { let (k, a, b) = triple(s); record_from(k, a, b) })
            .collect();
        let mask = if mask_pick == 0 { 1 } else { mask_pick };
        let (image, disk) = journal_image(&records);
        let ranges = payload_ranges(&image);
        prop_assert_eq!(ranges.len(), records.len());
        let victim = frame_pick % ranges.len();
        let (start, end) = ranges[victim];
        disk.corrupt_byte(start + offset_pick % (end - start), mask);

        let (_, replay) = Journal::recover(
            Box::new(disk),
            Box::new(SoftwareHasher::new()),
        );
        prop_assert!(!replay.torn_tail, "rot must not stop replay");
        prop_assert_eq!(replay.corrupt_frames, 1);
        let want: Vec<Record> = records
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != victim)
            .map(|(_, r)| r.clone())
            .collect();
        let got: Vec<Record> = replay.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, want);
    }
}

/// Fabric CRC (through the hosted lane, guarded by the recovery
/// policy) equals the Sarwate software CRC for arbitrary frames, at
/// every datapath width the serving stack deploys.
fn fabric_matches_software(m: usize, data: &[u8]) -> Result<(), TestCaseError> {
    let soft = SoftwareHasher::new().crc32(data);
    with_fabric(m, |h| {
        prop_assert_eq!(h.crc32(data), soft, "M={}", m);
        Ok(())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fabric_crc_matches_software_at_m8(data in collection::vec(any::<u8>(), 0..96)) {
        fabric_matches_software(8, &data)?;
    }

    #[test]
    fn fabric_crc_matches_software_at_m32(data in collection::vec(any::<u8>(), 0..96)) {
        fabric_matches_software(32, &data)?;
    }

    #[test]
    fn fabric_crc_matches_software_at_m128(data in collection::vec(any::<u8>(), 0..96)) {
        fabric_matches_software(128, &data)?;
    }
}

/// Frames written through the fabric hasher replay under the software
/// hasher and vice versa: the CRC is a format property, not a hasher
/// property.
#[test]
fn fabric_and_software_hashers_interoperate() {
    let records: Vec<Record> = (0..6).map(|i| record_from(i, u64::from(i), 3)).collect();
    let disk = SharedDisk::new();
    let fabric = FabricHasher::with_m(8).expect("host wal lane");
    let mut j = Journal::new(Box::new(disk.clone()), Box::new(fabric));
    for r in &records {
        j.append(r);
    }
    j.flush();
    let mut soft = SoftwareHasher::new();
    let replay = replay_bytes(&disk.durable(), &mut soft);
    assert!(replay.clean());
    assert_eq!(replay.frames_ok, 6);
    assert_eq!(
        FRAME_HEADER + FRAME_TRAILER,
        17,
        "frame overhead is part of the pinned format"
    );
}
