//! XOR-network intermediate representation.
//!
//! A [`XorNetwork`] is a DAG of XOR gates over a set of primary inputs,
//! computing a *linear* function over GF(2). It is the hand-off format
//! between the synthesis flow (`synth`) and the PiCoGA / ASIC back-ends:
//! gates carry no placement yet, only fan-in lists and topological levels.

use gf2::{BitMat, BitVec};
use std::fmt;

/// Reference to a signal: primary input `0..n_inputs`, then gate outputs
/// in creation order at `n_inputs..`.
pub type SignalId = usize;

/// One multi-input XOR gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorGate {
    /// Fan-in signal ids (at least 1; a 1-input gate is a buffer).
    pub inputs: Vec<SignalId>,
}

/// A combinational XOR network.
///
/// # Invariants
///
/// * Gates only reference earlier signals (inputs or previously created
///   gates), so the gate list is already topologically ordered.
/// * Outputs reference any signal, or `None` for the constant 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorNetwork {
    n_inputs: usize,
    gates: Vec<XorGate>,
    outputs: Vec<Option<SignalId>>,
    max_fanin: usize,
}

impl XorNetwork {
    /// Creates an empty network over `n_inputs` primary inputs with the
    /// given gate fan-in limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_fanin < 2`.
    pub fn new(n_inputs: usize, max_fanin: usize) -> Self {
        assert!(max_fanin >= 2, "fan-in limit must be at least 2");
        XorNetwork {
            n_inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
            max_fanin,
        }
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// The gate fan-in limit this network was built under.
    pub fn max_fanin(&self) -> usize {
        self.max_fanin
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[XorGate] {
        &self.gates
    }

    /// The output signal list (`None` = constant 0).
    pub fn outputs(&self) -> &[Option<SignalId>] {
        &self.outputs
    }

    /// Total signal count (inputs + gates).
    pub fn n_signals(&self) -> usize {
        self.n_inputs + self.gates.len()
    }

    /// Adds a gate, returning its output signal id.
    ///
    /// # Panics
    ///
    /// Panics if the fan-in is empty, exceeds the limit, or references a
    /// not-yet-defined signal.
    pub fn add_gate(&mut self, inputs: Vec<SignalId>) -> SignalId {
        assert!(!inputs.is_empty(), "gate needs at least one input");
        assert!(
            inputs.len() <= self.max_fanin,
            "gate fan-in {} exceeds limit {}",
            inputs.len(),
            self.max_fanin
        );
        let next = self.n_signals();
        assert!(
            inputs.iter().all(|&s| s < next),
            "gate references undefined signal"
        );
        self.gates.push(XorGate { inputs });
        next
    }

    /// Appends an output.
    ///
    /// # Panics
    ///
    /// Panics if the signal is undefined.
    pub fn add_output(&mut self, signal: Option<SignalId>) {
        if let Some(s) = signal {
            assert!(s < self.n_signals(), "output references undefined signal");
        }
        self.outputs.push(signal);
    }

    /// Evaluates the network on concrete input bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n_inputs`.
    pub fn evaluate(&self, inputs: &BitVec) -> BitVec {
        assert_eq!(inputs.len(), self.n_inputs, "input width mismatch");
        let mut values = Vec::with_capacity(self.n_signals());
        for i in 0..self.n_inputs {
            values.push(inputs.get(i));
        }
        for g in &self.gates {
            let v = g.inputs.iter().fold(false, |acc, &s| acc ^ values[s]);
            values.push(v);
        }
        let mut out = BitVec::zeros(self.outputs.len());
        for (i, o) in self.outputs.iter().enumerate() {
            if let Some(s) = o {
                if values[*s] {
                    out.set(i, true);
                }
            }
        }
        out
    }

    /// Topological level of every signal: inputs at level 0, each gate one
    /// level above its deepest fan-in.
    pub fn levels(&self) -> Vec<usize> {
        let mut lv = vec![0usize; self.n_signals()];
        for (gi, g) in self.gates.iter().enumerate() {
            let l = g.inputs.iter().map(|&s| lv[s]).max().unwrap_or(0) + 1;
            lv[self.n_inputs + gi] = l;
        }
        lv
    }

    /// Logic depth: maximum level over output signals (0 for wire-only
    /// networks).
    pub fn depth(&self) -> usize {
        let lv = self.levels();
        self.outputs
            .iter()
            .flatten()
            .map(|&s| lv[s])
            .max()
            .unwrap_or(0)
    }

    /// Gates grouped by level (level 1 first). The width of the widest
    /// level bounds how many cells one pipeline stage must hold.
    pub fn levelize(&self) -> Vec<Vec<usize>> {
        let lv = self.levels();
        let depth = (0..self.gates.len())
            .map(|gi| lv[self.n_inputs + gi])
            .max()
            .unwrap_or(0);
        let mut levels = vec![Vec::new(); depth];
        for gi in 0..self.gates.len() {
            levels[lv[self.n_inputs + gi] - 1].push(gi);
        }
        levels
    }

    /// Recovers the linear function as a matrix (row per output, column per
    /// input) by symbolic evaluation — the correctness oracle for the
    /// synthesis flow.
    pub fn to_matrix(&self) -> BitMat {
        // Propagate input-support bitsets through the DAG.
        let mut support: Vec<BitVec> = Vec::with_capacity(self.n_signals());
        for i in 0..self.n_inputs {
            support.push(BitVec::unit(i, self.n_inputs));
        }
        for g in &self.gates {
            let mut s = BitVec::zeros(self.n_inputs);
            for &inp in &g.inputs {
                s.xor_assign(&support[inp]);
            }
            support.push(s);
        }
        let rows = self
            .outputs
            .iter()
            .map(|o| match o {
                Some(s) => support[*s].clone(),
                None => BitVec::zeros(self.n_inputs),
            })
            .collect();
        BitMat::from_rows(rows)
    }
}

impl fmt::Display for XorNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XorNetwork: {} inputs, {} gates, {} outputs, depth {}",
            self.n_inputs,
            self.gates.len(),
            self.outputs.len(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain() -> XorNetwork {
        // out0 = i0^i1^i2, out1 = i2, out2 = 0
        let mut n = XorNetwork::new(3, 2);
        let g0 = n.add_gate(vec![0, 1]);
        let g1 = n.add_gate(vec![g0, 2]);
        n.add_output(Some(g1));
        n.add_output(Some(2));
        n.add_output(None);
        n
    }

    #[test]
    fn evaluate_truth_table() {
        let n = xor_chain();
        for v in 0..8u64 {
            let inp = BitVec::from_u64(v, 3);
            let out = n.evaluate(&inp);
            let (i0, i1, i2) = (v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1);
            assert_eq!(out.get(0), i0 ^ i1 ^ i2);
            assert_eq!(out.get(1), i2);
            assert!(!out.get(2));
        }
    }

    #[test]
    fn depth_and_levels() {
        let n = xor_chain();
        assert_eq!(n.depth(), 2);
        let levels = n.levelize();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1], vec![1]);
    }

    #[test]
    fn to_matrix_matches_evaluate() {
        let n = xor_chain();
        let m = n.to_matrix();
        for v in 0..8u64 {
            let inp = BitVec::from_u64(v, 3);
            assert_eq!(m.mul_vec(&inp), n.evaluate(&inp));
        }
    }

    #[test]
    #[should_panic]
    fn fanin_limit_enforced() {
        let mut n = XorNetwork::new(4, 2);
        n.add_gate(vec![0, 1, 2]);
    }

    #[test]
    #[should_panic]
    fn undefined_signal_rejected() {
        let mut n = XorNetwork::new(2, 4);
        n.add_gate(vec![0, 7]);
    }

    #[test]
    fn fanout_live_and_support_hooks() {
        // g0 = i0^i1 feeds g1; g2 = i0^i2 is dead; out = [g1, i2].
        let mut n = XorNetwork::new(3, 2);
        let g0 = n.add_gate(vec![0, 1]);
        let g1 = n.add_gate(vec![g0, 2]);
        let g2 = n.add_gate(vec![0, 2]);
        n.add_output(Some(g1));
        n.add_output(Some(2));

        let fan = n.fanout_counts();
        assert_eq!(fan[0], 2); // i0 read by g0 and g2
        assert_eq!(fan[2], 3); // i2 read by g1, g2 and output 1
        assert_eq!(fan[g1], 1);
        assert_eq!(fan[g2], 0);

        let live = n.live_signals();
        assert!(live[0] && live[1] && live[2] && live[g0] && live[g1]);
        assert!(!live[g2], "g2 feeds nothing");

        assert_eq!(n.signal_support(0), BitVec::unit(0, 3));
        let s = n.signal_support(g1);
        assert!(s.get(0) && s.get(1) && s.get(2));
        let s = n.signal_support(g2);
        assert!(s.get(0) && !s.get(1) && s.get(2));
    }

    #[test]
    fn wire_only_network_has_depth_zero() {
        let mut n = XorNetwork::new(2, 4);
        n.add_output(Some(1));
        n.add_output(Some(0));
        assert_eq!(n.depth(), 0);
        assert_eq!(n.gate_count(), 0);
        let m = n.to_matrix();
        assert!(m.get(0, 1) && m.get(1, 0) && !m.get(0, 0));
    }
}

impl XorNetwork {
    /// How many readers each signal has: gate fan-ins plus primary
    /// outputs. Indexed like [`levels`](Self::levels) (inputs first).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_signals()];
        for g in &self.gates {
            for &s in &g.inputs {
                counts[s] += 1;
            }
        }
        for o in self.outputs.iter().flatten() {
            counts[*o] += 1;
        }
        counts
    }

    /// Which signals transitively reach a primary output. Gates that are
    /// not live are dead logic (they burn a cell for nothing).
    pub fn live_signals(&self) -> Vec<bool> {
        let mut live = vec![false; self.n_signals()];
        for o in self.outputs.iter().flatten() {
            live[*o] = true;
        }
        // Gates are topologically ordered, so one reverse sweep suffices.
        for gi in (0..self.gates.len()).rev() {
            if live[self.n_inputs + gi] {
                for &s in &self.gates[gi].inputs {
                    live[s] = true;
                }
            }
        }
        live
    }

    /// The input-support vector of one signal: which primary inputs its
    /// value depends on (symbolic forward propagation, the per-signal
    /// view behind [`to_matrix`](Self::to_matrix)).
    pub fn signal_support(&self, signal: SignalId) -> BitVec {
        assert!(signal < self.n_signals(), "undefined signal");
        if signal < self.n_inputs {
            return BitVec::unit(signal, self.n_inputs);
        }
        let mut support: Vec<BitVec> = Vec::with_capacity(signal + 1);
        for i in 0..self.n_inputs {
            support.push(BitVec::unit(i, self.n_inputs));
        }
        for g in &self.gates[..=signal - self.n_inputs] {
            let mut s = BitVec::zeros(self.n_inputs);
            for &inp in &g.inputs {
                s.xor_assign(&support[inp]);
            }
            support.push(s);
        }
        support[signal].clone()
    }

    /// Redirects one fan-in wire of gate `gate_idx` to `new_signal`,
    /// modelling a single-event upset in the routing configuration. The
    /// new source must still be an *earlier* signal so the DAG invariant
    /// (and hence the topological gate order) survives the corruption —
    /// a PiCoGA wire can only ever be driven from a previous row.
    ///
    /// This is a **fault-injection hook**: it deliberately bypasses the
    /// synthesis flow, and the resulting network in general no longer
    /// computes its source matrix.
    ///
    /// # Panics
    ///
    /// Panics if the gate, pin, or signal is out of range, or if
    /// `new_signal` is not earlier than the gate's own output signal.
    pub fn set_gate_input(&mut self, gate_idx: usize, pin: usize, new_signal: SignalId) {
        assert!(gate_idx < self.gates.len(), "gate out of range");
        let own = self.n_inputs + gate_idx;
        assert!(
            new_signal < own,
            "wire must come from an earlier signal ({new_signal} >= {own})"
        );
        let g = &mut self.gates[gate_idx];
        assert!(pin < g.inputs.len(), "pin out of range");
        g.inputs[pin] = new_signal;
    }

    /// Re-taps primary output `out_idx` to `new_signal` (or the constant
    /// 0), modelling a single-event upset in the output routing.
    ///
    /// Like [`set_gate_input`](Self::set_gate_input), this is a
    /// fault-injection hook, not part of the synthesis flow.
    ///
    /// # Panics
    ///
    /// Panics if the output index or the signal is out of range.
    pub fn set_output(&mut self, out_idx: usize, new_signal: Option<SignalId>) {
        assert!(out_idx < self.outputs.len(), "output out of range");
        if let Some(s) = new_signal {
            assert!(s < self.n_signals(), "output references undefined signal");
        }
        self.outputs[out_idx] = new_signal;
    }

    /// Renders the network as Graphviz DOT (inputs as boxes, gates as
    /// circles labelled with their level, outputs as double circles) —
    /// the debugging view the mapping flow prints on request.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let lv = self.levels();
        let mut d = String::new();
        let _ = writeln!(d, "digraph \"{name}\" {{");
        let _ = writeln!(d, "  rankdir=LR;");
        for i in 0..self.n_inputs {
            let _ = writeln!(d, "  i{i} [shape=box,label=\"in{i}\"];");
        }
        for (gi, g) in self.gates.iter().enumerate() {
            let sid = self.n_inputs + gi;
            let _ = writeln!(d, "  g{gi} [shape=circle,label=\"^ L{}\"];", lv[sid]);
            for &s in &g.inputs {
                if s < self.n_inputs {
                    let _ = writeln!(d, "  i{s} -> g{gi};");
                } else {
                    let _ = writeln!(d, "  g{} -> g{gi};", s - self.n_inputs);
                }
            }
        }
        for (oi, o) in self.outputs.iter().enumerate() {
            let _ = writeln!(d, "  o{oi} [shape=doublecircle,label=\"out{oi}\"];");
            match o {
                Some(s) if *s < self.n_inputs => {
                    let _ = writeln!(d, "  i{s} -> o{oi};");
                }
                Some(s) => {
                    let _ = writeln!(d, "  g{} -> o{oi};", s - self.n_inputs);
                }
                None => {}
            }
        }
        let _ = writeln!(d, "}}");
        d
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;

    #[test]
    fn dot_output_names_every_node_and_edge() {
        let mut n = XorNetwork::new(3, 4);
        let g0 = n.add_gate(vec![0, 1]);
        let g1 = n.add_gate(vec![g0, 2]);
        n.add_output(Some(g1));
        n.add_output(None);
        let d = n.to_dot("test");
        assert!(d.starts_with("digraph \"test\""));
        for node in ["i0", "i1", "i2", "g0", "g1", "o0", "o1"] {
            assert!(d.contains(node), "missing {node} in:\n{d}");
        }
        assert!(d.contains("i0 -> g0;"));
        assert!(d.contains("g0 -> g1;"));
        assert!(d.contains("g1 -> o0;"));
        // The constant-0 output has no driver edge.
        assert!(!d.contains("-> o1;"));
        // Levels annotated.
        assert!(d.contains("L1") && d.contains("L2"));
    }
}
