//! # xornet — XOR-network synthesis for linear GF(2) functions
//!
//! The design-automation substrate of the picolfsr workspace: it turns the
//! matrices produced by `lfsr-parallel` (`B_Mt`, `A_Mt`, `T`, stacked
//! scrambler outputs) into DAGs of bounded-fan-in XOR gates, with the
//! common-pattern sharing the paper's §4 describes, ready for placement on
//! PiCoGA rows (`picoga`) or timing estimation in the ASIC model (`asic`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ir;
mod synth;

pub use ir::{SignalId, XorGate, XorNetwork};
pub use synth::{report, synthesize, SynthOptions, SynthReport};
