//! Linear-network synthesis: matrix rows → ≤K-input XOR gates.
//!
//! This reproduces the back half of the authors' design-automation flow
//! (§4): "it maps the required matrices on 10-bit XORs, by an algorithm
//! that reduces the number of required XORs detecting 10-bit common
//! patterns among the rows of B_Mt and T".
//!
//! Two phases:
//!
//! 1. **Common-pattern extraction** — greedy common-subexpression
//!    elimination: repeatedly find the signal pair shared by the most
//!    rows, grow it into a pattern of up to `max_fanin` signals that still
//!    co-occurs in at least two rows, materialise it as a gate and
//!    substitute it everywhere.
//! 2. **Covering** — each row's residual signal set is reduced with a
//!    balanced tree of ≤`max_fanin`-input gates.

use crate::ir::{SignalId, XorNetwork};
use gf2::BitMat;
use std::collections::HashMap;

/// Synthesis options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthOptions {
    /// Maximum gate fan-in (10 for a PiCoGA logic cell).
    pub max_fanin: usize,
    /// Enable phase 1 (common-pattern extraction). Disabling it yields the
    /// naive per-row trees, useful as an ablation baseline.
    pub share_patterns: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            max_fanin: 10,
            share_patterns: true,
        }
    }
}

/// Synthesises the linear function `y = M·x` into an XOR network.
///
/// Each matrix row becomes one output; ones in the row select the input
/// signals to XOR.
///
/// # Panics
///
/// Panics if `opts.max_fanin < 2`.
pub fn synthesize(matrix: &BitMat, opts: SynthOptions) -> XorNetwork {
    let mut net = XorNetwork::new(matrix.cols(), opts.max_fanin);
    // Rows as sorted signal-id sets.
    let mut rows: Vec<Vec<SignalId>> = matrix
        .iter_rows()
        .map(|r| r.iter_ones().collect())
        .collect();

    if opts.share_patterns {
        extract_patterns(&mut net, &mut rows, opts.max_fanin);
    }

    for row in rows {
        let out = cover_row(&mut net, row, opts.max_fanin);
        net.add_output(out);
    }
    net
}

/// Phase 1: repeatedly materialise the most-shared pattern.
///
/// A pattern of `s` signals shared by `c` rows removes `c·(s−1)` literals
/// from the cover phase at the price of one extra gate; since a ≤K tree
/// over `L` literals costs about `(L−1)/(K−1)` gates, extraction only pays
/// when `c·(s−1) ≥ K`. Patterns below that bar are left to the cover
/// phase — on dense random-like matrices (a big `B_Mt`) this makes the phase
/// a no-op rather than a pessimisation.
fn extract_patterns(net: &mut XorNetwork, rows: &mut [Vec<SignalId>], max_fanin: usize) {
    // Pair counting is quadratic in row width; past this literal budget the
    // savings no longer justify the runtime and the naive cover is used
    // (matrices this big exceed any PiCoGA-class fabric anyway).
    const CSE_LITERAL_BUDGET: usize = 4096;
    if rows.iter().map(std::vec::Vec::len).sum::<usize>() > CSE_LITERAL_BUDGET {
        return;
    }
    loop {
        // Count pair occurrences across rows.
        let mut pair_count: HashMap<(SignalId, SignalId), usize> = HashMap::new();
        for row in rows.iter() {
            for i in 0..row.len() {
                for j in i + 1..row.len() {
                    *pair_count.entry((row[i], row[j])).or_insert(0) += 1;
                }
            }
        }
        let Some((&best_pair, &count)) = pair_count
            .iter()
            .max_by_key(|&(pair, c)| (*c, std::cmp::Reverse(*pair)))
        else {
            break;
        };
        if count < 2 {
            break;
        }

        // Grow the pattern: add signals common to every row containing it,
        // as long as the sharing row set keeps at least 2 rows.
        let mut pattern = vec![best_pair.0, best_pair.1];
        loop {
            if pattern.len() >= max_fanin {
                break;
            }
            let holders: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| pattern.iter().all(|s| r.contains(s)))
                .map(|(i, _)| i)
                .collect();
            // Candidate extensions: signals present in *all* holder rows.
            let mut candidate: Option<SignalId> = None;
            if holders.len() >= 2 {
                let first = &rows[holders[0]];
                'cand: for &s in first {
                    if pattern.contains(&s) {
                        continue;
                    }
                    for &h in &holders[1..] {
                        if !rows[h].contains(&s) {
                            continue 'cand;
                        }
                    }
                    candidate = Some(s);
                    break;
                }
            }
            match candidate {
                Some(s) => pattern.push(s),
                None => break,
            }
        }
        pattern.sort_unstable();

        // Acceptance: the extraction must actually save cover gates.
        let holders = rows
            .iter()
            .filter(|r| pattern.iter().all(|s| r.contains(s)))
            .count();
        if holders * (pattern.len() - 1) < max_fanin {
            break;
        }

        // Materialise and substitute.
        let gate = net.add_gate(pattern.clone());
        for row in rows.iter_mut() {
            if pattern.iter().all(|s| row.contains(s)) {
                row.retain(|s| !pattern.contains(s));
                row.push(gate);
                row.sort_unstable();
            }
        }
    }
}

/// Phase 2: balanced ≤K tree over one row's residual signals.
fn cover_row(net: &mut XorNetwork, mut row: Vec<SignalId>, max_fanin: usize) -> Option<SignalId> {
    match row.len() {
        0 => None,
        1 => Some(row[0]),
        _ => {
            while row.len() > 1 {
                let mut next = Vec::with_capacity(row.len().div_ceil(max_fanin));
                for chunk in row.chunks(max_fanin) {
                    if chunk.len() == 1 {
                        next.push(chunk[0]);
                    } else {
                        next.push(net.add_gate(chunk.to_vec()));
                    }
                }
                row = next;
            }
            Some(row[0])
        }
    }
}

/// Convenience report of a synthesis result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthReport {
    /// Number of XOR gates.
    pub gates: usize,
    /// Logic depth in gate levels.
    pub depth: usize,
    /// Width of the widest level (cells needed in the fullest stage).
    pub max_level_width: usize,
}

/// Summarises a network.
pub fn report(net: &XorNetwork) -> SynthReport {
    let levels = net.levelize();
    SynthReport {
        gates: net.gate_count(),
        depth: net.depth(),
        max_level_width: levels.iter().map(std::vec::Vec::len).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gf2::{BitMat, BitVec, Gf2Poly};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> BitMat {
        let mut m = BitMat::zeros(rows, cols);
        let mut x = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x & 1 == 1 {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    fn check_equivalence(m: &BitMat, opts: SynthOptions) {
        let net = synthesize(m, opts);
        assert_eq!(net.to_matrix(), *m, "symbolic mismatch");
        // Spot-check with concrete vectors too.
        let mut x = 0xACE1u64;
        for _ in 0..16 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut v = BitVec::zeros(m.cols());
            for j in 0..m.cols() {
                if (x >> (j % 64)) & 1 == 1 {
                    v.set(j, true);
                }
            }
            assert_eq!(net.evaluate(&v), m.mul_vec(&v));
        }
    }

    #[test]
    fn synthesis_preserves_function_random() {
        for seed in 1..6u64 {
            let m = random_matrix(24, 40, seed);
            check_equivalence(&m, SynthOptions::default());
            check_equivalence(
                &m,
                SynthOptions {
                    share_patterns: false,
                    max_fanin: 10,
                },
            );
            check_equivalence(
                &m,
                SynthOptions {
                    share_patterns: true,
                    max_fanin: 2,
                },
            );
        }
    }

    #[test]
    fn synthesis_preserves_function_crc_matrices() {
        // Use a real B_M-shaped matrix: powers of the CRC-16 companion.
        let g = Gf2Poly::from_crc_notation(0x1021, 16);
        let a = BitMat::companion(&g);
        let a16 = a.pow(16);
        check_equivalence(&a16, SynthOptions::default());
    }

    #[test]
    fn sharing_never_increases_gate_count() {
        for seed in 1..8u64 {
            let m = random_matrix(16, 32, seed * 7 + 1);
            let shared = synthesize(&m, SynthOptions::default());
            let naive = synthesize(
                &m,
                SynthOptions {
                    share_patterns: false,
                    max_fanin: 10,
                },
            );
            assert!(
                shared.gate_count() <= naive.gate_count() + m.rows(),
                "sharing exploded: {} vs {}",
                shared.gate_count(),
                naive.gate_count()
            );
        }
    }

    #[test]
    fn dense_identical_rows_share_one_gate_tree() {
        // Ten identical 10-bit rows: sharing should need ~1 gate, naive 10.
        let row = BitVec::from_u64(0x3FF, 10);
        let m = BitMat::from_rows(vec![row; 10]);
        let shared = synthesize(&m, SynthOptions::default());
        let naive = synthesize(
            &m,
            SynthOptions {
                share_patterns: false,
                max_fanin: 10,
            },
        );
        assert!(shared.gate_count() < naive.gate_count());
        assert_eq!(shared.gate_count(), 1);
        assert_eq!(shared.to_matrix(), m);
    }

    #[test]
    fn zero_and_identity_rows() {
        let mut m = BitMat::zeros(3, 4);
        m.set(1, 2, true); // wire
        let net = synthesize(&m, SynthOptions::default());
        assert_eq!(net.gate_count(), 0);
        assert_eq!(net.outputs()[0], None);
        assert_eq!(net.outputs()[1], Some(2));
        assert_eq!(net.to_matrix(), m);
    }

    #[test]
    fn fanin_two_builds_binary_tree_depth() {
        // 16-input parity at fan-in 2 needs depth ceil(log2 16) = 4.
        let m = BitMat::from_rows(vec![BitVec::ones(16)]);
        let net = synthesize(
            &m,
            SynthOptions {
                share_patterns: false,
                max_fanin: 2,
            },
        );
        assert_eq!(net.depth(), 4);
        assert_eq!(net.gate_count(), 15);
    }

    #[test]
    fn report_is_consistent() {
        let m = random_matrix(20, 30, 99);
        let net = synthesize(&m, SynthOptions::default());
        let r = report(&net);
        assert_eq!(r.gates, net.gate_count());
        assert_eq!(r.depth, net.depth());
        assert!(r.max_level_width >= 1);
    }
}
