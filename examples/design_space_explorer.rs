//! Design-space exploration: reproduce the paper's §4 investigation — the
//! look-ahead limit of the DREAM fabric — and then ask the questions the
//! paper leaves open: how would the limit move on bigger/smaller fabrics,
//! and what does the equivalent flat ASIC look like?
//!
//! Run with `cargo run --release --example design_space_explorer`.

use picolfsr::asic::{TechNode, UcrcModel};
use picolfsr::flow::{explore_f, max_lookahead, sweep_m};
use picolfsr::lfsr::crc::CrcSpec;
use picolfsr::picoga::PicogaParams;

fn main() {
    let spec = CrcSpec::crc32_ethernet();

    // 1. The paper's sweep on the real DREAM fabric.
    println!("== M sweep on DREAM (24 rows x 16 cells, 4 contexts) ==");
    for p in sweep_m(spec, &[16, 32, 64, 128, 160, 256], &PicogaParams::dream()) {
        println!("  {p}");
    }

    // 2. How the limit scales with the fabric.
    println!("\n== Maximum look-ahead vs fabric size ==");
    for (rows, cells) in [(12usize, 16usize), (24, 16), (48, 16), (48, 32)] {
        let mut params = PicogaParams::dream();
        params.rows = rows;
        params.cells_per_row = cells;
        params.usable_cells_per_row = (cells * 3) / 4;
        params.input_bits = 1024; // lift the I/O cap to expose the logic cap
        let limit = max_lookahead(spec, &params);
        println!(
            "  {rows:>2} rows x {cells:>2} cells: up to {limit:>4} bits/cycle ({:.1} Gbit/s kernel)",
            limit as f64 * 0.2
        );
    }

    // 3. The empirical f-study of §4: Derby's arbitrary seed vector barely
    //    matters.
    println!("\n== Derby seed-vector exploration (M = 32) ==");
    let reports = explore_f(spec, 32);
    let t_ones: Vec<usize> = reports.iter().map(|r| r.t_ones).collect();
    println!(
        "  {} admissible unit seeds; T density min/avg/max = {}/{}/{} ones",
        reports.len(),
        t_ones.iter().min().unwrap(),
        t_ones.iter().sum::<usize>() / t_ones.len(),
        t_ones.iter().max().unwrap()
    );
    println!("  (the paper: \"we didn't find significant difference\"; it chose f = e0)");

    // 4. Bonus: emit the synthesisable Verilog of the flat M = 32 parallel
    //    CRC an ASIC team would hand to the synthesis flow.
    let ucrc = UcrcModel::new(spec, 32, TechNode::st65lp()).expect("model");
    let stats = ucrc.stats();
    println!(
        "\n== Flat ASIC equivalent (M = 32, 65 nm): {} XOR2, depth {}, est. {:.0} MHz ==",
        stats.xor2_gates,
        stats.depth,
        stats.clock_hz / 1e6
    );
    let verilog = ucrc.to_verilog("crc32_ethernet_p32");
    println!(
        "  Verilog: {} lines (first two assigns shown)",
        verilog.lines().count()
    );
    for line in verilog.lines().filter(|l| l.contains("assign")).take(2) {
        println!("    {}", line.trim());
    }
}
