//! Ethernet FCS offload: a MAC-style scenario where DREAM computes the
//! frame check sequence of an outgoing burst of frames, with Kong–Parhi
//! message interleaving hiding the per-frame configuration switches
//! (paper §5, Figs. 4–5).
//!
//! Run with `cargo run --release --example ethernet_fcs_offload`.

use picolfsr::dream::RunReport;
use picolfsr::flow::{build_crc_app, FlowOptions};
use picolfsr::lfsr::crc::{crc_bitwise, CrcSpec};
use picolfsr::riscsim::CrcKernel;

/// Builds a deterministic pseudo-frame of `len` payload bytes.
fn frame(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn main() {
    let spec = CrcSpec::crc32_ethernet();
    let (mut app, _) =
        build_crc_app(spec, &FlowOptions::dream_m128()).expect("M = 128 maps onto DREAM");

    // A burst of frames across the Ethernet size range.
    let sizes = [64usize, 128, 256, 512, 1024, 1518, 64, 1518];
    let burst: Vec<Vec<u8>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| frame(n, i as u64 + 1))
        .collect();
    let total_bits: u64 = burst.iter().map(|f| 8 * f.len() as u64).sum();

    // --- Sequential offload: one frame at a time. ---
    let mut seq = RunReport::default();
    for f in &burst {
        let (fcs, r) = app.checksum(f);
        assert_eq!(fcs, crc_bitwise(spec, f));
        seq.absorb(&r);
    }

    // --- Interleaved offload: the whole burst in two configuration
    //     phases (all state updates, then all anti-transforms). ---
    let refs: Vec<&[u8]> = burst.iter().map(std::vec::Vec::as_slice).collect();
    let (fcs_batch, il) = app.checksum_interleaved(&refs);
    for (fcs, f) in fcs_batch.iter().zip(&burst) {
        assert_eq!(*fcs, crc_bitwise(spec, f));
    }

    // --- Software on the embedded RISC, for scale. ---
    let kernel = CrcKernel::ethernet_sarwate();
    let risc_cycles: u64 = burst
        .iter()
        .map(|f| kernel.run(f).expect("run").cycles)
        .sum();

    println!(
        "FCS offload of {} frames, {total_bits} payload bits:",
        burst.len()
    );
    println!(
        "  sequential DREAM : {:>7} cycles  ({:.2} Gbit/s)",
        seq.total_cycles(),
        seq.throughput_bps(200e6) / 1e9
    );
    println!(
        "  interleaved DREAM: {:>7} cycles  ({:.2} Gbit/s, {:.1}% fewer cycles)",
        il.total_cycles(),
        il.throughput_bps(200e6) / 1e9,
        100.0 * (seq.total_cycles() - il.total_cycles()) as f64 / seq.total_cycles() as f64
    );
    println!(
        "  software RISC    : {risc_cycles:>7} cycles  ({:.3} Gbit/s) — {:.0}x slower",
        total_bits as f64 * 200e6 / risc_cycles as f64 / 1e9,
        risc_cycles as f64 / il.total_cycles() as f64
    );
}
