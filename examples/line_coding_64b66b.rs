//! 64B/66B line scrambling: the *self-synchronising* scrambler
//! `x⁵⁸ + x³⁹ + 1` that 10G+ Ethernet PCS layers run at line rate —
//! exactly the "tens of Gbit/sec" regime the paper's introduction names.
//!
//! Unlike the frame-synchronous 802.11 scrambler, the multiplicative
//! scrambler feeds its *output* back into the register, so (a) the
//! receiver self-synchronises after 58 bits with no seed exchange, and
//! (b) the state update is still linear — the same look-ahead + Derby
//! machinery parallelises it to M bits per cycle.
//!
//! Run with `cargo run --release --example line_coding_64b66b`.

use picolfsr::gf2::{BitVec, Gf2Poly};
use picolfsr::lfsr::StateSpaceLfsr;
use picolfsr::parallel::{BlockSystem, DerbyTransform};

fn pcs_polynomial() -> Gf2Poly {
    let mut p = Gf2Poly::x_pow(58);
    p.set_coeff(39, true);
    p.set_coeff(0, true);
    p
}

fn payload(bits: usize, seed: u64) -> BitVec {
    let mut v = BitVec::zeros(bits);
    let mut x = seed | 1;
    for i in 0..bits {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x & 1 == 1 {
            v.set(i, true);
        }
    }
    v
}

fn main() {
    let s = pcs_polynomial();
    println!("64B/66B PCS scrambler: s(x) = {s}");

    // --- Serial transmit, wrongly-seeded receive: self-synchronisation. ---
    let data = payload(660, 0x10_6E);
    let mut tx = StateSpaceLfsr::multiplicative_scrambler(&s).expect("degree 58");
    tx.set_state(BitVec::from_u64(0x2AA_AAAA_AAAA, 58));
    let line = tx.transduce(&data);

    let mut rx = StateSpaceLfsr::multiplicative_descrambler(&s).expect("degree 58");
    // The receiver starts from all-zero state: no seed was exchanged.
    let recovered = rx.transduce(&line);
    let first_good = (0..data.len())
        .position(|i| (i..data.len()).all(|j| recovered.get(j) == data.get(j)))
        .expect("must synchronise");
    println!("  receiver self-synchronised after {first_good} bits (register depth 58)");

    // --- Parallelise to line rate with the paper's machinery. ---
    println!("\n  M-bit-per-cycle parallel forms (verified against serial):");
    let base = StateSpaceLfsr::multiplicative_scrambler(&s).expect("degree 58");
    for m in [32usize, 66, 128] {
        let bs = BlockSystem::new(&base, m).expect("m >= 1");
        let derby = DerbyTransform::new(&bs);
        let loop_ones = match &derby {
            Ok(d) => d.complexity().feedback_ones,
            Err(_) => bs.a_m().count_ones(),
        };
        // Functional check at this M.
        let mut serial = base.clone();
        let seed = BitVec::from_u64(0x1FF, 58);
        serial.set_state(seed.clone());
        let expect = serial.transduce(&data);
        let mut tail = base.clone();
        let (_, got) = bs.run(&mut tail, &seed, &data);
        assert_eq!(got, expect, "M={m}");
        println!(
            "    M={m:>3}: {} -> {:.1} Gbit/s at 200 MHz; transformed loop = {loop_ones} ones (dense A^M = {})",
            if derby.is_ok() { "Derby OK " } else { "dense    " },
            m as f64 * 0.2,
            bs.a_m().count_ones(),
        );
    }

    // --- Error propagation: the known cost of self-sync scrambling. ---
    let mut corrupted = line.clone();
    corrupted.flip(300);
    let mut rx2 = StateSpaceLfsr::multiplicative_descrambler(&s).expect("degree 58");
    let out = rx2.transduce(&corrupted);
    // Compare against the clean-line descramble from the same receiver
    // state, so only the injected error differs.
    let errors: Vec<usize> = (0..data.len())
        .filter(|&i| out.get(i) != recovered.get(i))
        .collect();
    println!(
        "\n  one line error at bit 300 multiplies to {} payload errors at {:?}",
        errors.len(),
        errors
    );
    assert_eq!(errors.len(), 3, "taps of weight 3 triple each line error");
    assert_eq!(errors, vec![300, 300 + 39, 300 + 58]);
}
