//! Quickstart: map the Ethernet CRC-32 onto the DREAM fabric at M = 128
//! and checksum a frame — the paper's headline configuration.
//!
//! Run with `cargo run --release --example quickstart`.

use picolfsr::dream::EnergyModel;
use picolfsr::flow::{build_crc_app, FlowOptions};
use picolfsr::lfsr::crc::{crc_bitwise, CrcSpec};

fn main() {
    let spec = CrcSpec::crc32_ethernet();

    // 1. Run the paper's design flow: matrices -> Derby transform ->
    //    10-input XOR mapping -> two PiCoGA operations -> DREAM app.
    let (mut app, report) =
        build_crc_app(spec, &FlowOptions::dream_m128()).expect("M = 128 maps onto DREAM");

    println!("Flow report for {} at M = {}:", spec.name, report.m);
    println!(
        "  feedback loop: {} ones (plain look-ahead would keep {} ones of A^M in the loop)",
        report.derby_loop_ones, report.lookahead_loop_ones
    );
    println!(
        "  update op:   {} rows, {} cells (pipeline depth {})",
        report.update_stats.rows, report.update_stats.cells, report.update_stats.latency
    );
    if let Some(fin) = report.finalize_stats {
        println!("  finalize op: {} rows, {} cells", fin.rows, fin.cells);
    }
    println!("  kernel peak: {:.1} Gbit/s", report.kernel_bps / 1e9);

    // 2. Checksum a maximum-size Ethernet frame.
    let frame: Vec<u8> = (0..1518).map(|i| (i * 37 + 5) as u8).collect();
    let (crc, run) = app.checksum(&frame);
    assert_eq!(
        crc as u32 as u64,
        crc_bitwise(spec, &frame),
        "bit-exact vs software"
    );

    println!("\n1518-byte frame:");
    println!("  FCS = 0x{crc:08X}");
    println!(
        "  {} cycles ({} compute, {} context-switch, {} control, {} tail)",
        run.total_cycles(),
        run.picoga.compute,
        run.picoga.context_switch,
        run.control_cycles,
        run.tail_cycles
    );
    println!(
        "  throughput: {:.2} Gbit/s @ 200 MHz",
        run.throughput_bps(200e6) / 1e9
    );

    // 3. Energy vs the software RISC reference.
    let e = EnergyModel::dream_90nm();
    println!(
        "  energy: {:.1} pJ/bit ({:.0}x below the {:.0} pJ/bit RISC reference)",
        e.pj_per_bit(&run, app.update_stats().cells),
        e.gain_vs_risc(&run, app.update_stats().cells),
        e.risc_pj_per_bit
    );
}
