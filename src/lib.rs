//! # picolfsr — reproduction of "Implementation of Parallel LFSR-based
//! Applications on an Adaptive DSP featuring a Pipelined Configurable
//! Gate Array" (DATE 2008)
//!
//! This facade re-exports the workspace crates under one roof so examples
//! and downstream users need a single dependency:
//!
//! * [`gf2`] — GF(2) linear algebra (bit vectors, matrices, polynomials);
//! * [`lfsr`] — LFSR applications: CRC catalogue + software baselines,
//!   scramblers/PRBS, stream ciphers (A5/1, E0, CSS);
//! * [`parallel`] — parallelisation methods: look-ahead, Derby's
//!   state-space transform, GFMAC, message interleaving;
//! * [`xornet`] — XOR-network synthesis (10-input cells, common-pattern
//!   sharing);
//! * [`picoga`] — the pipelined configurable gate array model and
//!   cycle-accurate simulator;
//! * [`dream`] — the DREAM SoC layer (control model, CRC and scrambler
//!   accelerators, energy model);
//! * [`riscsim`] — the embedded-RISC software baseline (RV32-style
//!   interpreter + CRC kernels);
//! * [`asic`] — the UCRC synthesis comparison model and Fig. 6 theory
//!   curves;
//! * [`flow`] — the end-to-end mapping flow and design-space explorer
//!   (the paper's core contribution);
//! * [`resilience`] — fault injection, runtime self-checking and the
//!   recovery ladder (reload → re-synthesis → software fallback);
//! * [`stream`] — fault-tolerant multi-stream serving: sessions with
//!   checkpoint/restore, token-bucket admission, the overload shedding
//!   ladder, and the seeded `stream_storm` stress harness;
//! * [`obs`] — the unified observability spine: deterministic metrics
//!   registry, cycle-stamped event tracer, and per-row fabric profiler
//!   shared by every layer above (exported by the `obs_report` bench
//!   binary as `BENCH_obs.json`);
//! * [`analyze`] — whole-configuration static analysis: the GF(2)
//!   linearity/affineness prover (certifying the runtime basis probe's
//!   soundness), the static timing/resource analyzer cross-checked
//!   against the fabric profiler, and the bounded model checker for
//!   the serving/recovery/cluster state machines (exported by the
//!   `fabric_analyze` bench binary as `BENCH_analyze.json`);
//! * [`cluster`] — sharded multi-fabric serving: a control plane over
//!   N independent shard stacks with rendezvous placement, a periodic
//!   checkpoint sweep, digest-verified live migration, fenced shard
//!   drain, and checkpoint-replay whole-shard failover with typed
//!   stream loss (stressed by the seeded `cluster_storm` bench binary)
//!   — plus the self-healing control loop and deterministic chaos
//!   harness: per-shard circuit breakers, idempotent-token retries,
//!   health-scored rebalancing, rolling personality upgrades, and the
//!   seeded `chaos_storm` campaign that drives all of it under
//!   adversarial schedules (DESIGN.md §12);
//! * [`wal`] — crash-consistent durability for the control plane: an
//!   append-only CRC-framed journal over a simulated disk with
//!   partial-flush semantics (torn tails, bit rot, duplicated
//!   appends), replayed by `cluster::Cluster::recover` after seeded
//!   whole-cluster power losses in the `crash_storm` campaign
//!   (DESIGN.md §13).
//!
//! ## Quickstart
//!
//! ```
//! use picolfsr::flow::{build_crc_app, FlowOptions};
//! use picolfsr::lfsr::crc::CrcSpec;
//!
//! let (mut app, _report) =
//!     build_crc_app(CrcSpec::crc32_ethernet(), &FlowOptions::dream_with_m(32))?;
//! let (crc, report) = app.checksum(b"123456789");
//! assert_eq!(crc, 0xCBF43926);
//! println!("{} cycles", report.total_cycles());
//! # Ok::<(), picolfsr::dream::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analyze;
pub use asic;
pub use cluster;
pub use dream;
pub use dream_lfsr as flow;
pub use gf2;
pub use lfsr;
pub use lfsr_parallel as parallel;
pub use obs;
pub use picoga;
pub use resilience;
pub use riscsim;
pub use stream;
pub use verify;
pub use wal;
pub use xornet;
