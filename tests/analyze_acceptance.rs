//! Acceptance tests for the `analyze` crate against the real flow.
//!
//! These exercise the whole chain end to end rather than unit-level
//! pieces: every catalogue personality the flow can build must come out
//! provably affine and inside the fabric's static bounds, a deliberately
//! nonlinear configuration must be rejected with a typed diagnostic, a
//! doctored certificate must make the runtime probe refuse, and the
//! static timing model must agree cycle-for-cycle with the live fabric
//! profiler.
//!
//! The catalogue sweep doubles as the fan-out survey referenced from
//! `PicogaParams::max_signal_fanout`: it tracks the densest signal any
//! real personality produces and pins it against both the routing bound
//! and the documented peak.

use picolfsr::analyze::{
    self, analyze_timing, check_config, AnalysisParams, AnalyzeCode, CellFunc, FabricConfig,
    LutTable,
};
use picolfsr::dream::{ControlModel, DreamSystem, Health, SystemError};
use picolfsr::flow::{
    build_personality, build_scrambler_app, build_scrambler_personality, FlowOptions,
};
use picolfsr::gf2::BitVec;
use picolfsr::lfsr::crc::CATALOG;
use picolfsr::lfsr::scramble::ScramblerSpec;
use picolfsr::picoga::{PgaOperation, PicogaParams};

/// Flow options with the built-in gates off, so the tests drive
/// `check_config` explicitly instead of relying on the flow's own
/// strict-mode pass.
fn raw_opts(m: usize) -> FlowOptions {
    FlowOptions {
        verify: None,
        analyze: false,
        ..FlowOptions::dream_with_m(m)
    }
}

/// Every catalogue personality (CRC update + finalize, plus the 802.11
/// scrambler) at M ∈ {8, 32, 128} passes the full static analysis with
/// an affine certificate, and the fan-out survey stays at the
/// documented peak — well inside the routing bound.
#[test]
fn catalogue_personalities_all_certify_affine_within_bounds() {
    let params = AnalysisParams::for_fabric(&PicogaParams::dream());
    let mut checked = 0usize;
    let mut max_fanout = 0usize;
    let mut densest = String::new();

    let mut survey = |label: &str, op: &PgaOperation| {
        let cfg = FabricConfig::from_op(op);
        let analysis = check_config(&cfg, &params)
            .unwrap_or_else(|e| panic!("{label} rejected by static analysis: {e}"));
        assert!(
            analysis.cert.affine,
            "{label} not affine: {}",
            analysis.cert.summary()
        );
        assert!(analysis.cert.offending_cells.is_empty(), "{label}");
        if analysis.timing.max_fanout > max_fanout {
            max_fanout = analysis.timing.max_fanout;
            densest = label.to_string();
        }
        checked += 1;
    };

    for m in [8usize, 32, 128] {
        for spec in CATALOG {
            // Some narrow CRCs don't map at large M; the bench catalogue
            // skips those too.
            let Ok(p) = build_personality(spec.name, spec, &raw_opts(m)) else {
                continue;
            };
            survey(&format!("{} M={m} update", spec.name), &p.update);
            if let Some(fin) = &p.finalize {
                survey(&format!("{} M={m} finalize", spec.name), fin);
            }
        }
        let sp = build_scrambler_personality("scrambler", ScramblerSpec::ieee80211(), &raw_opts(m))
            .expect("802.11 scrambler maps at every surveyed M");
        survey(&format!("802.11 M={m} scrambler"), &sp.op);
    }

    assert!(checked > 100, "sweep too small to be a survey: {checked}");
    let bound = PicogaParams::dream().max_signal_fanout();
    assert!(
        max_fanout <= bound,
        "{densest} fans out {max_fanout}, over the routing bound {bound}"
    );
    // The documented peak in `PicogaParams::max_signal_fanout`'s doc
    // comment; update both together if the catalogue grows a denser
    // network.
    assert_eq!(
        max_fanout, 33,
        "catalogue fan-out peak moved (now {densest}); update arch.rs"
    );
}

/// A deliberately nonlinear LUT is rejected with the typed AZ001/AZ002
/// diagnostics, and the error's `Display` names the codes.
#[test]
fn nonlinear_lut_config_is_rejected_with_typed_diagnostic() {
    let mut cfg = FabricConfig::new("and-gate", 2);
    let s = cfg.add_cell(0, vec![0, 1], CellFunc::Lut(LutTable::new(2, 0b1000)));
    cfg.add_output(Some(s));

    let err = check_config(&cfg, &AnalysisParams::dream())
        .expect_err("an AND gate must never pass the affineness gate");
    let codes: Vec<AnalyzeCode> = err.report.findings.iter().map(|f| f.code).collect();
    assert!(codes.contains(&AnalyzeCode::NonlinearCell), "{codes:?}");
    assert!(codes.contains(&AnalyzeCode::NonAffineOutput), "{codes:?}");
    let shown = err.to_string();
    assert!(
        shown.contains("AZ001") && shown.contains("AZ002"),
        "{shown}"
    );
}

/// End to end on the system layer: a dream-preset build attaches a
/// certificate, the probe accepts it, and a doctored non-affine
/// certificate turns the probe into a typed `ProbeUnsound` refusal
/// without touching lane health.
#[test]
fn dream_system_carries_and_enforces_the_certificate() {
    let spec = CATALOG
        .iter()
        .find(|s| s.name == "CRC-32/ETHERNET")
        .expect("catalogue has Ethernet CRC");
    let opts = FlowOptions::dream_with_m(32); // analyze gate on by default
    let p = build_personality("eth", spec, &opts).unwrap();
    let cert = p.linearity.clone().expect("dream presets attach a cert");
    assert!(cert.affine);

    let mut sys = DreamSystem::new(PicogaParams::dream(), ControlModel::default());
    sys.register(p).unwrap();
    assert!(sys.datapath_probe("eth").unwrap());

    let mut doctored = build_personality("eth2", spec, &opts).unwrap();
    doctored.linearity = Some(analyze::LinearityCert {
        affine: false,
        linear: false,
        n_affine: 0,
        n_nonlinear: 1,
        offending_cells: vec![3],
        matrix: None,
        offset: None,
        ..cert
    });
    sys.register(doctored).unwrap();
    let err = sys.datapath_probe("eth2").unwrap_err();
    assert!(matches!(err, SystemError::ProbeUnsound { .. }), "{err}");
    assert_eq!(
        sys.health("eth2"),
        Health::Healthy,
        "config property, not a fault"
    );
}

/// The static timing model agrees with the live fabric profiler: a real
/// scrambler run's measured per-row busy cycles and fill/drain stalls
/// match the prediction exactly.
#[test]
fn static_timing_matches_the_live_profiler() {
    let m = 32usize;
    let (mut app, _) =
        build_scrambler_app(ScramblerSpec::ieee80211(), &raw_opts(m)).expect("scrambler maps");
    let timing = analyze_timing(&FabricConfig::from_op(app.op()));

    let hub = app.fabric().obs();
    let busy0 = hub.profiler.row_busy().to_vec();
    let stalls0 = hub.profiler.fill_drain_stalls();
    let (issues0, blocks0) = lane_totals(&hub.profiler);

    let data = BitVec::ones(8 * m); // 8 blocks in one issue
    let _ = app.scramble(0x7F, &data);

    let hub = app.fabric().obs();
    let busy: Vec<u64> = hub
        .profiler
        .row_busy()
        .iter()
        .zip(busy0.iter().chain(std::iter::repeat(&0)))
        .map(|(a, b)| a - b)
        .collect();
    let stalls = hub.profiler.fill_drain_stalls() - stalls0;
    let (issues1, blocks1) = lane_totals(&hub.profiler);

    analyze::cross_check(&timing, issues1 - issues0, blocks1 - blocks0, &busy, stalls)
        .expect("static prediction must match the measured run");
}

fn lane_totals(p: &picolfsr::obs::FabricProfiler) -> (u64, u64) {
    p.lanes()
        .values()
        .fold((0, 0), |(i, b), u| (i + u.issues, b + u.blocks))
}
