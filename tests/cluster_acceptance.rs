//! End-to-end acceptance of the sharded serving deployment through the
//! `picolfsr` facade: open streams across a cluster, migrate one live,
//! drain a shard, kill another, and require every surviving digest to
//! match the software oracle while every loss is typed — never silent.

use picolfsr::cluster::{Cluster, ClusterConfig, DownReason, LossReason, ShardState};
use picolfsr::flow::FlowOptions;
use picolfsr::lfsr::crc::{crc_bitwise, CrcSpec};
use picolfsr::stream::{AdmissionConfig, Priority, StreamOutput};

fn cluster(n: usize, checkpoint_interval: u64) -> Cluster {
    let mut cfg = ClusterConfig::homogeneous(n, AdmissionConfig::default());
    cfg.checkpoint_interval = checkpoint_interval;
    let mut cl = Cluster::new(&cfg);
    let eth = *CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    cl.host_crc("eth", &eth, FlowOptions::dream_with_m(32))
        .unwrap();
    cl
}

fn payload(tag: u8) -> Vec<u8> {
    (0..48u32)
        .map(|i| (i as u8).wrapping_mul(3) ^ tag)
        .collect()
}

#[test]
fn migrate_drain_kill_and_failover_keep_digests_exact() {
    let spec = CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    let mut cl = cluster(3, 2);

    // Open one stream per shard-ish; feed the first half everywhere.
    let ids: Vec<u64> = (0..6)
        .map(|_| cl.open_crc("eth", Priority::High, 8).unwrap())
        .collect();
    let data: Vec<Vec<u8>> = (0..6).map(|i| payload(i as u8 * 17 + 1)).collect();
    for (n, &id) in ids.iter().enumerate() {
        cl.feed(id, &data[n][..24]).unwrap();
    }
    cl.tick();
    cl.tick(); // interval 2 ⇒ the sweep has captured everyone

    // Live migration: move stream 0 to a different shard, mid-stream.
    let from = cl.shard_of(ids[0]).unwrap();
    let to = (from + 1) % 3;
    cl.migrate(ids[0], to).unwrap();
    assert_eq!(cl.shard_of(ids[0]), Some(to));

    // Planned drain: fence a shard and run the control loop until it
    // retires empty; its residents must have migrated out live.
    let drained = (to + 1) % 3;
    cl.drain_shard(drained).unwrap();
    for _ in 0..16 {
        cl.tick();
    }
    assert_eq!(
        cl.shard_state(drained),
        Some(ShardState::Down(DownReason::Drained)),
        "a fenced shard must shed everything and retire"
    );
    assert!(ids.iter().all(|&id| cl.shard_of(id) != Some(drained)));

    // Forced kill: every resident of the victim replays from its sweep
    // checkpoint onto survivors.
    let victim = cl.shard_of(ids[1]).unwrap();
    cl.kill_shard(victim).unwrap();
    assert_eq!(
        cl.shard_state(victim),
        Some(ShardState::Down(DownReason::Killed))
    );
    let resumes = cl.take_failover_resumes();
    assert!(
        resumes.iter().any(|r| r.id == ids[1]),
        "the checkpointed resident must have failed over"
    );

    // Clients replay from each resume point, then feed the second half.
    for r in &resumes {
        let n = ids.iter().position(|&id| id == r.id).unwrap();
        let start = usize::try_from(r.resume_from).unwrap();
        assert!(start <= 24, "resume point must be within delivered data");
        if start < 24 {
            cl.feed(r.id, &data[n][start..24]).unwrap();
        }
    }
    for (n, &id) in ids.iter().enumerate() {
        cl.feed(id, &data[n][24..]).unwrap();
    }
    cl.tick();

    for (n, &id) in ids.iter().enumerate() {
        match cl.finish(id).unwrap() {
            StreamOutput::Crc(got) => {
                assert_eq!(
                    got,
                    crc_bitwise(spec, &data[n]),
                    "stream {n} digest drifted"
                );
            }
            other => panic!("CRC stream delivered {other:?}"),
        }
    }
    assert!(cl.losses().is_empty(), "no stream may be lost in this run");
    let c = cl.counters();
    assert!(c.migrations >= 2, "manual + drain migrations: {c:?}");
    assert!(c.failovers >= 1, "the kill must have replayed: {c:?}");
}

#[test]
fn chaos_campaign_heals_and_stays_exact_through_the_facade() {
    use picolfsr::cluster::{run_chaos_storm, ChaosStormConfig};

    // The lib tests cover the full smoke shape; through the facade a
    // reduced campaign proves the public API carries the whole loop:
    // chaos injection, breakers, tokenized retries, a rolling upgrade.
    let mut cfg = ChaosStormConfig::smoke(77);
    cfg.storm.streams = 48;
    cfg.storm.ticks = 100;
    cfg.storm.drain_tick = 20;
    cfg.storm.kill_tick = 40;
    cfg.storm.crc_ms = vec![8];
    cfg.upgrade_tick = 50;
    cfg.upgrade_shards = vec![2];
    let report = run_chaos_storm(&cfg).unwrap();
    assert!(
        report.passed(),
        "chaos campaign failed:\n{}",
        report.render()
    );
    assert_eq!(report.completed, report.planned);
    assert_eq!(report.dup_violations, 0);
    let again = run_chaos_storm(&cfg).unwrap();
    assert_eq!(report.render(), again.render(), "same seed, same campaign");
}

#[test]
fn unswept_streams_die_typed_not_silent() {
    // Sweeps disabled: a killed shard's residents have no checkpoint
    // and must surface as typed `NoCheckpoint` losses.
    let mut cl = cluster(2, 0);
    let id = cl.open_crc("eth", Priority::High, 8).unwrap();
    cl.feed(id, &payload(9)).unwrap();
    cl.tick();
    let victim = cl.shard_of(id).unwrap();
    cl.kill_shard(victim).unwrap();

    let losses = cl.losses();
    assert_eq!(losses.len(), 1);
    assert_eq!(losses[0].id, id);
    assert_eq!(losses[0].reason, LossReason::NoCheckpoint);
    let err = cl.feed(id, &[1, 2, 3]).unwrap_err();
    assert!(
        matches!(
            err,
            picolfsr::cluster::ClusterError::StreamLost {
                reason: LossReason::NoCheckpoint,
                ..
            }
        ),
        "later use of a lost id must name the typed loss, got {err}"
    );
}
