//! Calibration check: the analytic `ControlModel` constants used by the
//! DREAM applications are justified by *executing* a realistic driver
//! sequence on the RISC interpreter — program the address generators,
//! start the fabric, poll for completion, collect the result.

use picolfsr::dream::ControlModel;
use picolfsr::riscsim::asm::Asm;
use picolfsr::riscsim::isa::reg::*;
use picolfsr::riscsim::Cpu;

/// Memory-mapped register block of the (modelled) PiCoGA control
/// interface.
const MMIO: u32 = 0x0800;
const REG_AG_BASE: i32 = 0x00; // 4 AG base registers, 4 bytes apart
const REG_AG_STRIDE: i32 = 0x10;
const REG_COUNT: i32 = 0x20;
const REG_START: i32 = 0x24;
const REG_STATUS: i32 = 0x28;
const REG_RESULT: i32 = 0x2C;

/// The message-setup driver: program 4 address generators (base+stride),
/// the block count, and fire the start register.
fn setup_program() -> Vec<picolfsr::riscsim::Instr> {
    let mut a = Asm::new();
    a.li(A0, MMIO);
    a.li(T0, 0x100); // message base
    for p in 0..4i32 {
        a.addi(T1, T0, p);
        a.sw(T1, A0, REG_AG_BASE + 4 * p);
        a.li(T2, 4);
        a.sw(T2, A0, REG_AG_STRIDE + 4 * p);
    }
    a.li(T3, 96); // block count
    a.sw(T3, A0, REG_COUNT);
    a.li(T4, 1);
    a.sw(T4, A0, REG_START);
    a.halt();
    a.assemble().expect("driver assembles")
}

/// The message-finalize driver: poll the status register (two spins),
/// read the checksum, store it to the result buffer.
fn finalize_program() -> Vec<picolfsr::riscsim::Instr> {
    let mut a = Asm::new();
    a.li(A0, MMIO);
    a.label("poll");
    a.lw(T0, A0, REG_STATUS);
    a.beq(T0, ZERO, "poll");
    a.lw(T1, A0, REG_RESULT);
    a.li(T2, 0x400);
    a.sw(T1, T2, 0);
    a.halt();
    a.assemble().expect("driver assembles")
}

fn run_cycles(prog: &[picolfsr::riscsim::Instr], preset_status: u32) -> u64 {
    let mut cpu = Cpu::new(8192);
    // The fabric raises STATUS after the stream drains; preset it so the
    // poll loop terminates after one or two spins.
    cpu.write_mem(MMIO + REG_STATUS as u32, &preset_status.to_le_bytes())
        .unwrap();
    cpu.run(prog, 10_000).unwrap();
    cpu.cycles()
}

#[test]
fn setup_constant_is_justified_by_a_real_driver() {
    let measured = run_cycles(&setup_program(), 0);
    let model = ControlModel::default().msg_setup_cycles;
    assert!(
        (model as f64) >= 0.5 * measured as f64 && (model as f64) <= 2.0 * measured as f64,
        "modelled {model} vs measured {measured} setup cycles"
    );
}

#[test]
fn finalize_constant_is_justified_by_a_real_driver() {
    let measured = run_cycles(&finalize_program(), 1);
    let model = ControlModel::default().msg_finalize_cycles;
    assert!(
        (model as f64) >= 0.5 * measured as f64 && (model as f64) <= 2.0 * measured as f64,
        "modelled {model} vs measured {measured} finalize cycles"
    );
}

#[test]
fn drivers_do_real_register_writes() {
    // The setup program must leave the MMIO block configured.
    let prog = setup_program();
    let mut cpu = Cpu::new(8192);
    cpu.run(&prog, 10_000).unwrap();
    let word = |off: i32| {
        let b = cpu.read_mem((MMIO as i64 + off as i64) as u32, 4).unwrap();
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    };
    for p in 0..4 {
        assert_eq!(word(REG_AG_BASE + 4 * p), 0x100 + p as u32);
        assert_eq!(word(REG_AG_STRIDE + 4 * p), 4);
    }
    assert_eq!(word(REG_COUNT), 96);
    assert_eq!(word(REG_START), 1);
}
