//! End-to-end acceptance of crash recovery through the `picolfsr`
//! facade: journal a serving cluster to a simulated disk, cut power
//! mid-flush so the log ends in a torn frame, rebuild the control
//! plane from the surviving bytes alone, and require every digest to
//! match the software oracle — with the half-written record gone and
//! nothing lost silently.

use picolfsr::cluster::{Cluster, ClusterConfig};
use picolfsr::flow::FlowOptions;
use picolfsr::lfsr::crc::{crc_bitwise, CrcSpec};
use picolfsr::stream::{AdmissionConfig, Priority, StreamOutput};
use picolfsr::wal::{CrashKind, FabricHasher, Journal, SharedDisk};

fn payload(tag: u8) -> Vec<u8> {
    (0..48u32)
        .map(|i| (i as u8).wrapping_mul(7) ^ tag)
        .collect()
}

fn hasher() -> FabricHasher {
    FabricHasher::with_m(8).expect("journal fabric lane hosts at M=8")
}

#[test]
fn torn_power_loss_recovers_streams_and_digests_exactly() {
    let spec = *CrcSpec::by_name("CRC-32/ETHERNET").unwrap();
    let mut cfg = ClusterConfig::homogeneous(3, AdmissionConfig::default());
    cfg.checkpoint_interval = 2;

    let disk = SharedDisk::new();
    let mut cl = Cluster::new(&cfg);
    cl.attach_journal(Journal::new(Box::new(disk.clone()), Box::new(hasher())));
    cl.host_crc("eth", &spec, FlowOptions::dream_with_m(32))
        .unwrap();

    let ids: Vec<u64> = (0..4)
        .map(|_| cl.open_crc("eth", Priority::High, 8).unwrap())
        .collect();
    let data: Vec<Vec<u8>> = (0..4u8).map(|i| payload(i * 31 + 5)).collect();
    for (n, &id) in ids.iter().enumerate() {
        cl.feed(id, &data[n][..24]).unwrap();
    }
    cl.tick();
    cl.tick(); // interval 2 ⇒ everyone is anchored, the journal flushed

    // One more stream whose Open record never reaches the platter: the
    // power cut tears its frame in half.
    let late = cl.open_crc("eth", Priority::High, 8).unwrap();
    assert!(
        disk.pending_len() > 7,
        "the late open must still be in the flush window"
    );
    disk.crash(CrashKind::Torn { keep: 7 });
    drop(cl); // everything in memory is gone; only the disk survives

    let (journal, replay) = Journal::recover(Box::new(disk.clone()), Box::new(hasher()));
    assert!(replay.torn_tail, "the half-written frame must stop replay");
    assert!(
        disk.stats().truncated_bytes > 0,
        "recovery must cut the damaged tail so the next epoch replays"
    );
    let (mut cl, report) = Cluster::recover(&cfg, journal, &replay);
    assert_eq!(report.streams_restored, 4, "report: {report:?}");
    assert_eq!(report.streams_lost, 0, "report: {report:?}");
    assert!(cl.losses().is_empty(), "no silent or typed losses here");
    assert!(
        cl.shard_of(late).is_none(),
        "a torn open never durably existed and must not route"
    );

    // Clients rewind to their resume offsets and finish the payloads.
    let resumes = cl.take_failover_resumes();
    assert_eq!(resumes.len(), 4, "every restored stream rewinds once");
    for r in &resumes {
        let n = ids.iter().position(|&id| id == r.id).unwrap();
        let start = usize::try_from(r.resume_from).unwrap();
        assert!(start <= 24, "resume point must be within delivered data");
        cl.feed(r.id, &data[n][start..]).unwrap();
    }
    cl.tick();
    for (n, &id) in ids.iter().enumerate() {
        match cl.finish(id).unwrap() {
            StreamOutput::Crc(got) => {
                assert_eq!(
                    got,
                    crc_bitwise(&spec, &data[n]),
                    "stream {n} digest drifted across the crash"
                );
            }
            other => panic!("CRC stream delivered {other:?}"),
        }
    }
}

#[test]
fn crash_campaign_stays_exact_through_the_facade() {
    use picolfsr::cluster::{run_crash_storm, CrashStormConfig};

    // The lib tests cover the full smoke shape; through the facade a
    // reduced campaign proves the public API carries the whole loop:
    // journaled traffic, whole-cluster crashes, hostile storage,
    // replay, and token-suppressed redelivery.
    let mut cfg = CrashStormConfig::smoke(2008);
    cfg.storm.streams = 48;
    cfg.storm.ticks = 90;
    cfg.storm.crc_ms = vec![8];
    cfg.storm.scrambler_m = 16;
    cfg.degrade_tick = 10;
    cfg.heal_tick = 13;
    cfg.fault_tick = 30;
    let report = run_crash_storm(&cfg).unwrap();
    assert!(
        report.passed(),
        "crash campaign failed:\n{}",
        report.render()
    );
    assert_eq!(report.completed, report.planned);
    assert_eq!(report.recoveries, report.crashes);
    assert_eq!(report.dup_violations, 0);
    let again = run_crash_storm(&cfg).unwrap();
    assert_eq!(report.render(), again.render(), "same seed, same campaign");
}
