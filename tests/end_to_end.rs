//! End-to-end integration: the full flow (spec → matrices → Derby →
//! XOR mapping → PiCoGA operations → DREAM run) against every independent
//! implementation in the workspace.

use picolfsr::asic::{TechNode, UcrcModel};
use picolfsr::dream::EnergyModel;
use picolfsr::flow::{build_crc_app, build_scrambler_app, FlowOptions};
use picolfsr::gf2::BitVec;
use picolfsr::lfsr::crc::{crc_bitwise, CrcEngine, CrcSpec, SarwateCrc, SlicingCrc};
use picolfsr::lfsr::scramble::{AdditiveScrambler, ScramblerSpec};
use picolfsr::riscsim::CrcKernel;

fn message(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 40) as u8
        })
        .collect()
}

#[test]
fn five_independent_crc32_implementations_agree() {
    let spec = CrcSpec::crc32_ethernet();
    let data = message(777, 42);

    let software = crc_bitwise(spec, &data);
    let sarwate = SarwateCrc::new(spec).unwrap().checksum(&data);
    let slicing = SlicingCrc::new(spec, 8).unwrap().checksum(&data);
    let risc = CrcKernel::ethernet_sarwate().run(&data).unwrap().crc as u64;
    let (mut dream_app, _) = build_crc_app(spec, &FlowOptions::dream_with_m(32)).expect("mapping");
    let (dream, _) = dream_app.checksum(&data);
    let mut ucrc = CrcEngine::new(*spec, UcrcModel::new(spec, 32, TechNode::st65lp()).unwrap());
    let asic = ucrc.checksum(&data);

    assert_eq!(software, sarwate);
    assert_eq!(software, slicing);
    assert_eq!(software, risc);
    assert_eq!(software, dream);
    assert_eq!(software, asic);
}

#[test]
fn flow_maps_every_narrow_catalogue_spec() {
    // Every CRC standard of width <= 32 must survive the full flow at a
    // moderate look-ahead (falling back across f seeds where needed).
    let data = message(130, 7);
    for spec in picolfsr::lfsr::crc::CATALOG
        .iter()
        .filter(|s| s.width <= 32)
    {
        match build_crc_app(spec, &FlowOptions::dream_with_m(16)) {
            Ok((mut app, _)) => {
                let (got, _) = app.checksum(&data);
                assert_eq!(got, crc_bitwise(spec, &data), "{}", spec.name);
            }
            Err(e) => panic!("{} failed the flow at M=16: {e}", spec.name),
        }
    }
}

#[test]
fn dream_beats_risc_and_respects_kernel_bound() {
    let spec = CrcSpec::crc32_ethernet();
    let (mut app, report) = build_crc_app(spec, &FlowOptions::dream_m128()).unwrap();
    let data = message(1536, 3); // block-aligned
    let (_, run) = app.checksum(&data);
    let dream_bps = run.throughput_bps(200e6);

    let risc_bps = CrcKernel::ethernet_sarwate()
        .steady_throughput_bps(200e6)
        .unwrap();
    assert!(
        dream_bps > 50.0 * risc_bps,
        "dream {dream_bps}, risc {risc_bps}"
    );
    // Throughput can never exceed M bits per cycle.
    assert!(dream_bps <= report.kernel_bps + 1.0);
}

#[test]
fn scrambler_descrambles_across_implementations() {
    let spec = ScramblerSpec::ieee80211();
    let (mut fabric, _) = build_scrambler_app(spec, &FlowOptions::dream_with_m(32)).unwrap();
    let mut software = AdditiveScrambler::new(spec).unwrap();

    let bits = {
        let bytes = message(200, 9);
        let mut v = BitVec::zeros(1600);
        for (i, b) in bytes.iter().enumerate() {
            for k in 0..8 {
                if (b >> k) & 1 == 1 {
                    v.set(i * 8 + k, true);
                }
            }
        }
        v
    };
    // Fabric scrambles, software descrambles — cross-implementation.
    let (scrambled, _) = fabric.scramble(spec.default_seed, &bits);
    let restored = software.scramble(&scrambled);
    assert_eq!(restored, bits);
}

#[test]
fn interleaved_batch_matches_sequential_checksums() {
    let spec = CrcSpec::crc32_ethernet();
    let (mut app, _) = build_crc_app(spec, &FlowOptions::dream_with_m(64)).unwrap();
    let batch: Vec<Vec<u8>> = (0..17).map(|i| message(64 + i * 13, i as u64)).collect();
    let refs: Vec<&[u8]> = batch.iter().map(std::vec::Vec::as_slice).collect();
    let (sums, report) = app.checksum_interleaved(&refs);
    assert_eq!(sums.len(), batch.len());
    for (s, d) in sums.iter().zip(&batch) {
        assert_eq!(*s, crc_bitwise(spec, d));
    }
    assert_eq!(
        report.bits,
        batch.iter().map(|d| 8 * d.len() as u64).sum::<u64>()
    );
}

#[test]
fn energy_model_orders_configurations_sanely() {
    let spec = CrcSpec::crc32_ethernet();
    let e = EnergyModel::dream_90nm();
    let data = message(1518, 5);
    let mut last_pj = f64::INFINITY;
    // Larger M processes the same bits in fewer cycles; with the per-cell
    // coefficients calibrated, pJ/bit must not explode with M.
    for m in [32usize, 64, 128] {
        let (mut app, _) = build_crc_app(spec, &FlowOptions::dream_with_m(m)).unwrap();
        let (_, run) = app.checksum(&data);
        let pj = e.pj_per_bit(&run, app.update_stats().cells);
        assert!(pj < 0.25 * e.risc_pj_per_bit, "M={m}: {pj} pJ/bit");
        assert!(pj < 2.0 * last_pj.min(1e9), "M={m} energy jumped: {pj}");
        last_pj = pj;
    }
}

#[test]
fn verilog_of_mapped_m_matches_functional_model() {
    // The emitted Verilog and the functional core come from the same
    // matrix; sanity-check the matrix row count and a known structural
    // property (every Ethernet CRC next-state bit depends on some input).
    let spec = CrcSpec::crc32_ethernet();
    let model = UcrcModel::new(spec, 8, TechNode::st65lp()).unwrap();
    let m = model.matrix();
    assert_eq!(m.rows(), 32);
    assert_eq!(m.cols(), 40);
    for r in 0..32 {
        assert!(m.row(r).count_ones() > 0, "row {r} is empty");
    }
}
