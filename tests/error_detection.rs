//! CRC error-detection guarantees, verified empirically across the
//! catalogue. These are the properties the protocols of the paper's §1
//! rely on; they double as deep functional tests of the engines (a subtle
//! engine bug would almost surely break a guarantee).

use picolfsr::gf2::Gf2Poly;
use picolfsr::lfsr::crc::{crc_bitwise, CrcSpec, CATALOG};

fn message(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 29) as u8
        })
        .collect()
}

/// Every single-bit error is detected (g has more than one term).
#[test]
fn single_bit_errors_always_detected() {
    for spec in CATALOG.iter().filter(|s| s.width <= 32) {
        let msg = message(64, 11);
        let good = crc_bitwise(spec, &msg);
        for byte in [0usize, 1, 31, 63] {
            for bit in 0..8 {
                let mut bad = msg.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(
                    crc_bitwise(spec, &bad),
                    good,
                    "{}: single-bit error at {byte}.{bit} undetected",
                    spec.name
                );
            }
        }
    }
}

/// Every burst of length ≤ width is detected: the burst polynomial is
/// `x^i · b(x)` with `deg b < width`, and `g` (having an x⁰ term and
/// degree = width) cannot divide it.
#[test]
fn bursts_up_to_width_always_detected() {
    for spec in CATALOG.iter().filter(|s| s.width <= 32 && s.width >= 8) {
        let msg = message(96, 13);
        let good = crc_bitwise(spec, &msg);
        let w = spec.width;
        // Bursts of exactly `w` bits at several byte-aligned positions,
        // with both endpoints flipped (true burst length w).
        for start_byte in [0usize, 7, 40, 96 - w / 8 - 1] {
            let mut bad = msg.clone();
            // Flip first and last bit of the window plus a pattern inside.
            bad[start_byte] ^= 0x01;
            bad[start_byte + w / 8 - 1] ^= 0x80;
            for k in 0..w / 8 {
                bad[start_byte + k] ^= 0x5A;
            }
            // Ensure we actually changed something.
            assert_ne!(bad, msg);
            assert_ne!(
                crc_bitwise(spec, &bad),
                good,
                "{}: {}-bit burst at byte {start_byte} undetected",
                spec.name,
                w
            );
        }
    }
}

/// Two-bit errors are detected as long as their distance stays below the
/// generator's order — spot-check the Ethernet CRC across a frame.
#[test]
fn double_bit_errors_detected_within_a_frame() {
    let spec = CrcSpec::crc32_ethernet();
    let msg = message(1518, 17);
    let good = crc_bitwise(spec, &msg);
    for (a, b) in [(0usize, 1usize), (0, 12143), (5000, 5001), (100, 9999)] {
        let mut bad = msg.clone();
        bad[a / 8] ^= 1 << (a % 8);
        bad[b / 8] ^= 1 << (b % 8);
        assert_ne!(crc_bitwise(spec, &bad), good, "bits {a},{b}");
    }
}

/// Generators divisible by (x+1) detect ALL odd-weight error patterns.
#[test]
fn odd_weight_errors_detected_when_parity_factor_present() {
    let x_plus_1 = Gf2Poly::from_u64(0b11);
    for spec in CATALOG.iter().filter(|s| s.width <= 24) {
        let has_parity = spec.generator().rem(&x_plus_1).is_zero();
        if !has_parity {
            continue;
        }
        let msg = message(48, 19);
        let good = crc_bitwise(spec, &msg);
        // Random odd-weight patterns (1, 3, 5 flipped bits).
        let mut x = 0xDADAu64;
        for weight in [1usize, 3, 5] {
            let mut bad = msg.clone();
            for _ in 0..weight {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let pos = (x % (48 * 8)) as usize;
                bad[pos / 8] ^= 1 << (pos % 8);
            }
            // The flips may coincide; only assert when the weight is odd
            // in effect (xor-distance odd).
            let dist: u32 = bad
                .iter()
                .zip(&msg)
                .map(|(p, q)| (p ^ q).count_ones())
                .sum();
            if dist % 2 == 1 {
                assert_ne!(
                    crc_bitwise(spec, &bad),
                    good,
                    "{}: odd-weight ({dist}) error undetected",
                    spec.name
                );
            }
        }
    }
}

/// The residue property: appending the (non-reflected, init-0, xorout-0)
/// checksum makes the raw CRC of the extended message zero — the receiver
/// check real hardware implements.
#[test]
fn appended_checksum_yields_zero_residue() {
    // Use a clean spec (no init/xorout/reflection) so the classic residue
    // property holds in its textbook form.
    let spec = CrcSpec::by_name("CRC-32/AIXM").unwrap();
    assert!(spec.init == 0 && spec.xorout == 0 && !spec.refin && !spec.refout);
    let msg = message(100, 23);
    let crc = crc_bitwise(spec, &msg);
    let mut framed = msg.clone();
    framed.extend_from_slice(&(crc as u32).to_be_bytes());
    assert_eq!(crc_bitwise(spec, &framed), 0, "residue must vanish");
}
