//! Smoke tests of the experiment harness: every table/figure generator
//! must render, and the headline claims of the paper must hold in the
//! regenerated data. (The full sweeps run under `cargo bench`.)

#[test]
fn table1_headline_speedups() {
    let t = bench::table1();
    assert!(t.contains("Table 1"));
    // One row per message length plus headers/footer.
    assert!(t.lines().count() >= 8, "{t}");
    assert!(t.contains("12144 bit"), "{t}");
    assert!(t.contains("GFMAC"), "{t}");
}

#[test]
fn mapping_report_finds_the_128_limit() {
    let m = bench::mapping_report();
    assert!(
        m.contains("maximum look-ahead on DREAM: 128 bits/cycle"),
        "{m}"
    );
    assert!(m.contains("M= 160: does not fit"), "{m}");
}

#[test]
fn fig6_orders_the_curves() {
    let f = bench::fig6();
    assert!(f.contains("M-theory"));
    assert!(f.contains("25.6 Gbit/s"), "{f}");
}

#[test]
fn fig7_respects_the_energy_band() {
    let f = bench::fig7();
    assert!(f.contains("400 pJ/bit"), "{f}");
    // Every DREAM cell in the table must be below the RISC reference.
    for line in f.lines().skip(3).filter(|l| l.contains('|')) {
        let cells: Vec<f64> = line
            .split(['|', ' '])
            .filter_map(|t| t.trim().parse::<f64>().ok())
            .collect();
        if cells.len() >= 5 {
            for &pj in &cells[1..4] {
                assert!(pj < 400.0, "cell {pj} not below RISC in: {line}");
            }
        }
    }
}

#[test]
fn interleaving_wins_at_paper_scale() {
    // 32 messages of one Ethernet minimum frame, M = 128 (the Fig. 5 case).
    let (il, seq) = bench::interleave_gain(512, 32, 128);
    assert!(il.total_cycles() < seq.total_cycles());
}
