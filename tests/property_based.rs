//! Property-based tests over the whole stack: for random messages,
//! look-ahead factors and specs, every engine must agree with the serial
//! reference, and the algebraic invariants of the parallelisation theory
//! must hold.

use picolfsr::gf2::{BitMat, BitVec, Gf2Poly};
use picolfsr::lfsr::crc::{crc_bitwise, CrcEngine, CrcSpec, SerialCore, CATALOG};
use picolfsr::lfsr::StateSpaceLfsr;
use picolfsr::parallel::{BlockSystem, DerbyCore, DerbyTransform, GfmacCore, LookaheadCore};
use picolfsr::xornet::{synthesize, SynthOptions};
use proptest::prelude::*;

fn narrow_specs() -> Vec<&'static CrcSpec> {
    CATALOG.iter().filter(|s| s.width <= 32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_with_bitwise(
        spec_idx in 0usize..narrow_specs().len(),
        m in 1usize..48,
        data in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let spec = narrow_specs()[spec_idx];
        let expected = crc_bitwise(spec, &data);

        let mut serial = CrcEngine::new(*spec, SerialCore::new(spec));
        prop_assert_eq!(serial.checksum(&data), expected);

        let mut look = CrcEngine::new(*spec, LookaheadCore::new(spec, m).unwrap());
        prop_assert_eq!(look.checksum(&data), expected);

        let mut gfmac = CrcEngine::new(*spec, GfmacCore::new(spec, m));
        prop_assert_eq!(gfmac.checksum(&data), expected);

        // Derby can hit a derogatory A^M for composite generators; when the
        // transform exists it must agree.
        if let Ok(core) = DerbyCore::new(spec, m) {
            let mut derby = CrcEngine::new(*spec, core);
            prop_assert_eq!(derby.checksum(&data), expected);
        }
    }

    #[test]
    fn crc_linearity_over_gf2(
        a in proptest::collection::vec(any::<u8>(), 1..100),
        b_seed in any::<u64>(),
    ) {
        // CRC of (a XOR b) XOR CRC(a) XOR CRC(b) == CRC(0^n) for the raw
        // (init = 0, no reflection games needed since xorout cancels).
        let spec = CrcSpec::by_name("CRC-32/XFER").unwrap(); // init 0, xorout 0
        let mut x = b_seed | 1;
        let b: Vec<u8> = a.iter().map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x >> 17) as u8
        }).collect();
        let ab: Vec<u8> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        let zero = vec![0u8; a.len()];
        prop_assert_eq!(
            crc_bitwise(spec, &ab),
            crc_bitwise(spec, &a) ^ crc_bitwise(spec, &b) ^ crc_bitwise(spec, &zero)
        );
    }

    #[test]
    fn derby_transform_invariants(m in 1usize..96) {
        let spec = CrcSpec::crc32_ethernet();
        let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
        let block = BlockSystem::new(&sys, m).unwrap();
        let derby = DerbyTransform::new(&block).unwrap();
        // Companion form.
        prop_assert!(derby.a_mt().is_companion());
        // Similarity: T·A_Mt == A^M·T.
        let a_m = sys.a().pow(m as u64);
        prop_assert_eq!(derby.t().mul(derby.a_mt()), a_m.mul(derby.t()));
        // Inverse pair.
        prop_assert_eq!(derby.t().mul(derby.t_inv()), BitMat::identity(32));
        // Transformed input network: T·B_Mt == B_M.
        prop_assert_eq!(derby.t().mul(derby.b_mt()), block.b_m().clone());
    }

    #[test]
    fn block_system_equals_m_serial_steps(
        m in 1usize..64,
        state_seed in any::<u64>(),
        block_seed in any::<u64>(),
    ) {
        let spec = CrcSpec::by_name("CRC-16/XMODEM").unwrap();
        let sys = StateSpaceLfsr::crc(&spec.generator()).unwrap();
        let bs = BlockSystem::new(&sys, m).unwrap();

        let state = BitVec::from_u64(state_seed, 16);
        let mut block = BitVec::zeros(m);
        let mut x = block_seed | 1;
        for i in 0..m {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            if x & 1 == 1 { block.set(i, true); }
        }

        let (fast, _) = bs.step_block(&state, &block);
        let mut slow = sys.clone();
        slow.set_state(state);
        slow.absorb(&block);
        prop_assert_eq!(fast, slow.state().clone());
    }

    #[test]
    fn synthesis_is_semantics_preserving(
        rows in 1usize..24,
        cols in 1usize..48,
        seed in any::<u64>(),
        max_fanin in 2usize..12,
        share in any::<bool>(),
    ) {
        let mut m = BitMat::zeros(rows, cols);
        let mut x = seed | 1;
        for i in 0..rows {
            for j in 0..cols {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;
                if x & 3 == 0 { m.set(i, j, true); }
            }
        }
        let net = synthesize(&m, SynthOptions { max_fanin, share_patterns: share });
        prop_assert_eq!(net.to_matrix(), m.clone());
        prop_assert!(net.gates().iter().all(|g| g.inputs.len() <= max_fanin));
    }

    #[test]
    fn companion_matrix_multiplication_is_poly_mod(
        poly_bits in 2u64..u64::MAX,
        v_seed in any::<u64>(),
        e in 0u64..64,
    ) {
        let g = Gf2Poly::from_u64(poly_bits | 1); // ensure +1 term, degree >= 1
        prop_assume!(g.degree().unwrap_or(0) >= 1);
        let k = g.degree().unwrap();
        let a = BitMat::companion(&g);
        let v = BitVec::from_u64(v_seed, k);
        // A^e·v == v(x)·x^e mod g(x).
        let lhs = a.pow(e).mul_vec(&v);
        let rhs = Gf2Poly::from_bitvec(&v)
            .mul(&Gf2Poly::x_pow(e as usize))
            .rem(&g);
        prop_assert_eq!(Gf2Poly::from_bitvec(&lhs), rhs);
    }

    #[test]
    fn matrix_inverse_roundtrip(seed in any::<u64>()) {
        // Random invertible matrix via random row operations on I.
        let n = 16;
        let mut m = BitMat::identity(n);
        let mut x = seed | 1;
        for _ in 0..64 {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            let i = (x % n as u64) as usize;
            let j = ((x >> 8) % n as u64) as usize;
            if i != j {
                let row_j = m.row(j).clone();
                let mut row_i = m.row(i).clone();
                row_i.xor_assign(&row_j);
                for c in 0..n {
                    m.set(i, c, row_i.get(c));
                }
            }
        }
        let inv = m.inverse().expect("row ops preserve invertibility");
        prop_assert_eq!(m.mul(&inv), BitMat::identity(n));
        prop_assert_eq!(m.rank(), n);
    }
}
