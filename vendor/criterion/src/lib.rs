//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion's API the workspace's
//! `benches/` use: [`Criterion::benchmark_group`], group tuning knobs,
//! [`BenchmarkGroup::bench_function`] / `bench_with_input`,
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed batches, and reports the best
//! per-iteration time (the statistic least disturbed by scheduler
//! noise). There are no plots, baselines, or statistical tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement — the criterion default.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Opaque-to-the-optimizer value laundering, re-exported for parity with
/// criterion's `black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark's throughput is derived from its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("lookahead", 32)` renders as `lookahead/32`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            throughput: None,
            _measurement: measurement::WallTime,
        }
    }
}

/// A group of benchmarks sharing tuning parameters and a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the per-iteration throughput used in the report line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(&mut self) {}

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up,
            },
            best_ns: f64::INFINITY,
        };
        // Warm-up pass: run the routine until the warm-up budget is spent.
        f(&mut bencher);
        bencher.mode = Mode::Sample {
            samples: self.sample_size,
            budget: self.measurement,
        };
        f(&mut bencher);
        let per_iter_ns = bencher.best_ns;
        let label = format!("{}/{}", self.name, id);
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gib_s = bytes as f64 / per_iter_ns.max(f64::MIN_POSITIVE);
                println!("{label:<45} {per_iter_ns:>12.1} ns/iter  {gib_s:>8.3} GB/s");
            }
            Some(Throughput::Elements(n)) => {
                let elem_ns = per_iter_ns / n as f64;
                println!("{label:<45} {per_iter_ns:>12.1} ns/iter  {elem_ns:>8.3} ns/elem");
            }
            None => println!("{label:<45} {per_iter_ns:>12.1} ns/iter"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp { until: Duration },
    Sample { samples: usize, budget: Duration },
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    best_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the best observed per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    hint::black_box(routine());
                }
            }
            Mode::Sample { samples, budget } => {
                let per_sample = budget / samples.max(1) as u32;
                let deadline = Instant::now() + budget;
                for _ in 0..samples {
                    // Batch iterations until the per-sample slice is spent,
                    // so very fast routines are timed over many calls.
                    let mut iters = 0u64;
                    let t0 = Instant::now();
                    loop {
                        hint::black_box(routine());
                        iters += 1;
                        if t0.elapsed() >= per_sample || iters >= 1_000_000 {
                            break;
                        }
                    }
                    let ns = t0.elapsed().as_secs_f64() * 1e9 / iters as f64;
                    if ns < self.best_ns {
                        self.best_ns = ns;
                    }
                    if Instant::now() >= deadline {
                        break;
                    }
                }
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(4));
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0u32;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &p| {
            b.iter(|| black_box(p * 2));
        });
        g.finish();
        assert!(ran > 0, "routine executed during warm-up and sampling");
    }

    #[test]
    fn benchmark_id_renders_function_slash_param() {
        assert_eq!(BenchmarkId::new("f", 128).to_string(), "f/128");
    }
}
