//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the small slice of proptest's API the workspace
//! uses: the [`Strategy`] trait with `prop_map`, `any::<T>()`, integer
//! range strategies, `collection::vec`, the `proptest!` macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimised.
//! * **Deterministic generation** — each test derives its RNG seed from
//!   the test name, so runs are reproducible without a persistence file.
//! * Rejections from `prop_assume!` skip the case rather than being
//!   retried against a global rejection quota.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Acceptable length specifications for [`vec`]: an exact `usize` or
    /// a half-open `Range<usize>`.
    pub trait SizeRange {
        /// Inclusive lower bound.
        fn lo(&self) -> usize;
        /// Exclusive upper bound.
        fn hi(&self) -> usize;
    }

    impl SizeRange for usize {
        fn lo(&self) -> usize {
            *self
        }
        fn hi(&self) -> usize {
            *self + 1
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn lo(&self) -> usize {
            self.start
        }
        fn hi(&self) -> usize {
            self.end
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (lo, hi) = (size.lo(), size.hi());
        assert!(lo < hi, "empty length range for collection::vec");
        VecStrategy {
            element,
            min: lo,
            max: hi,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max - self.min) as u64;
            let len = self.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(any::<u8>(), 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public
/// API surface.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(any::<u8>(), 2..6),
            w in crate::collection::vec(any::<bool>(), 4usize),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn prop_map_applies(v in any::<u64>().prop_map(|x| x % 7)) {
            prop_assert!(v < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("seed-name");
        let mut b = crate::test_runner::TestRng::deterministic("seed-name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other-name");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn always_fails(x in 0usize..2) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
