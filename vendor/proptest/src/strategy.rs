//! Value-generation strategies: the [`Strategy`] trait, `any`, integer
//! ranges, `Just`, and `prop_map`.

use crate::test_runner::TestRng;
use core::marker::PhantomData;
use core::ops::Range;

/// A recipe for generating values of one type from the test RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, failing the case as a rejection
    /// after a bounded number of attempts (proptest's `prop_filter` minus
    /// the global rejection bookkeeping).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
    }
}

/// Always produces a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, reached via [`any`].
pub trait ArbitraryValue {
    /// Draws an unconstrained value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy object returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates unconstrained values of `T` (proptest's `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                #[allow(clippy::cast_possible_truncation)]
                let off = ((u128::from(rng.next_u64())) % span) as $t;
                self.start + off
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_cover_their_span() {
        let mut rng = TestRng::deterministic("range-span");
        let strat = 5usize..8;
        let mut seen = [false; 3];
        for _ in 0..256 {
            let v = strat.generate(&mut rng);
            assert!((5..8).contains(&v));
            seen[v - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
    }

    #[test]
    fn just_and_filter_behave() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(42u8).generate(&mut rng), 42);
        let even = (0u64..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..32 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }
}
