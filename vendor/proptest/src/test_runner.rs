//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG behind every strategy.

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (proptest's constructor).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's preconditions did not hold (`prop_assume!`); it is
    /// skipped, not counted as a failure.
    Reject(String),
    /// An assertion failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// SplitMix64 generator seeded from the test name — deterministic across
/// runs and platforms, so failures reproduce without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a over the bytes).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h | 1, // never the all-zero state
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_looks_uniformish() {
        let mut rng = TestRng::deterministic("uniform");
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits total; a fair generator stays well inside 40-60%.
        assert!((1600..2500).contains(&ones), "popcount {ones}");
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
